"""Double precision, warp-synchronous idioms, and misc executor paths."""

import numpy as np
import pytest

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.kernelc import nvcc
from tests.helpers import KernelHarness, run_kernel

rng = np.random.default_rng(33)


class TestDoublePrecision:
    def test_f64_arithmetic(self):
        src = """
        __global__ void k(const double* x, double* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = x[i] * 3.0 + 1.0 / (x[i] + 2.0);
        }
        """
        x = rng.random(16)
        out = np.zeros(16)
        (_, out_), _ = run_kernel(src, 1, 16, x, out, 16)
        np.testing.assert_allclose(out_, x * 3.0 + 1.0 / (x + 2.0),
                                   rtol=1e-14)

    def test_f64_precision_exceeds_f32(self):
        src32 = """
        __global__ void k(float* out) {
            float x = 1.0f;
            x += 1e-8f;
            out[0] = x - 1.0f;
        }
        """
        src64 = src32.replace("float", "double").replace("1.0f", "1.0") \
            .replace("1e-8f", "1e-8")
        o32 = np.zeros(1, np.float32)
        o64 = np.zeros(1, np.float64)
        (o32_,), _ = run_kernel(src32, 1, 1, o32)
        (o64_,), _ = run_kernel(src64, 1, 1, o64)
        assert o32_[0] == 0.0          # swallowed at fp32
        assert o64_[0] > 0.0           # survives at fp64

    def test_f64_costs_more_on_c1060(self):
        """1/8-rate doubles on GT200 vs 1/2-rate on Fermi (§2.4)."""
        src_f = """
        __global__ void k(const float* x, float* o, int n) {
            float acc = 0.0f;
            for (int i = 0; i < 64; i++) acc = acc * 1.5f + x[0];
            o[threadIdx.x] = acc;
        }
        """
        src_d = src_f.replace("float acc = 0.0f",
                              "double acc = 0.0") \
            .replace("acc * 1.5f", "acc * 1.5") \
            .replace("float* o", "double* o")
        ratios = {}
        for spec in (TESLA_C1060, TESLA_C2070):
            hf = KernelHarness(src_f, spec=spec, arch=spec.arch)
            hd = KernelHarness(src_d, spec=spec, arch=spec.arch)
            _, rf = hf(1, 32, np.ones(4, np.float32),
                       np.zeros(32, np.float32), 1)
            _, rd = hd(1, 32, np.ones(4, np.float32),
                       np.zeros(32, np.float64), 1)
            ratios[spec.name] = rd.cycles / rf.cycles
        assert ratios["Tesla C1060"] > ratios["Tesla C2070"]


class TestWarpSynchronous:
    def test_warp_reduction_without_barriers(self):
        """Intra-warp shared-memory reduction needs no __syncthreads."""
        src = """
        __global__ void wr(const float* x, float* out) {
            __shared__ float buf[32];
            int lane = threadIdx.x;
            buf[lane] = x[lane];
            if (lane < 16) buf[lane] += buf[lane + 16];
            if (lane < 8) buf[lane] += buf[lane + 8];
            if (lane < 4) buf[lane] += buf[lane + 4];
            if (lane < 2) buf[lane] += buf[lane + 2];
            if (lane < 1) out[0] = buf[0] + buf[1];
        }
        """
        x = rng.random(32).astype(np.float32)
        out = np.zeros(1, np.float32)
        (_, out_), _ = run_kernel(src, 1, 32, x, out)
        np.testing.assert_allclose(out_[0], x.sum(), rtol=1e-5)

    def test_interwarp_race_needs_barrier(self):
        """Cross-warp reads without a barrier see stale/zero data for
        at least one ordering — the executor runs warps serially, so
        warp 0 reads before warp 1 writes."""
        src = """
        __global__ void race(float* out) {
            __shared__ float buf[64];
            buf[threadIdx.x] = 1.0f;
            // missing __syncthreads()
            out[threadIdx.x] = buf[63 - threadIdx.x];
        }
        """
        out = np.zeros(64, np.float32)
        (out_,), _ = run_kernel(src, 1, 64, out)
        assert (out_[:32] == 0.0).all()  # warp 0 saw unwritten data
        assert (out_[32:] == 1.0).all()


class TestMiscSemantics:
    def test_min_max_signedness(self):
        src = """
        __global__ void k(int* out) {
            out[0] = min(-5, 3);
            out[1] = max(-5, 3);
            out[2] = (int)umin(4294967295u, 7u);
            out[3] = (int)umax(1u, 7u);
        }
        """
        out = np.zeros(4, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        np.testing.assert_array_equal(out_, [-5, 3, 7, 7])

    def test_fdividef_approximation(self):
        src = """
        __global__ void k(const float* a, const float* b, float* o,
                          int n) {
            int i = threadIdx.x;
            if (i < n) o[i] = __fdividef(a[i], b[i]);
        }
        """
        a = rng.random(16).astype(np.float32) + 0.5
        b = rng.random(16).astype(np.float32) + 0.5
        o = np.zeros(16, np.float32)
        (_, _, o_), _ = run_kernel(src, 1, 16, a, b, o, 16)
        np.testing.assert_allclose(o_, a / b, rtol=1e-5)

    def test_saturatef(self):
        src = """
        __global__ void k(const float* x, float* o, int n) {
            int i = threadIdx.x;
            if (i < n) o[i] = __saturatef(x[i]);
        }
        """
        x = np.array([-0.5, 0.25, 1.5], dtype=np.float32)
        o = np.zeros(3, np.float32)
        (_, o_), _ = run_kernel(src, 1, 4, x, o, 3)
        np.testing.assert_array_equal(o_, [0.0, 0.25, 1.0])

    def test_grid_y_dimension(self):
        src = """
        __global__ void k(int* out, int w) {
            out[blockIdx.y * w + blockIdx.x] =
                blockIdx.y * 100 + blockIdx.x;
        }
        """
        out = np.zeros(6, np.int32)
        (out_,), _ = run_kernel(src, (3, 2), 1, out, 3)
        np.testing.assert_array_equal(out_.reshape(2, 3),
                                      [[0, 1, 2], [100, 101, 102]])

    def test_stats_track_divergence_and_barriers(self):
        src = """
        __global__ void k(const int* x, int* o) {
            __shared__ int buf[64];
            buf[threadIdx.x] = x[threadIdx.x];
            __syncthreads();
            if (x[threadIdx.x] % 2 == 0) o[threadIdx.x] = buf[0];
            else o[threadIdx.x] = buf[1];
        }
        """
        x = rng.integers(0, 100, 64, dtype=np.int32)
        o = np.zeros(64, np.int32)
        (_, o_), result = run_kernel(src, 1, 64, x, o)
        warp_stats = [w for s in result.stats for w in s.warps]
        assert sum(w.barriers for w in warp_stats) == 2  # 2 warps
        assert sum(w.divergent_branches for w in warp_stats) >= 1

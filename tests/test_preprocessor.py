"""Unit tests for the preprocessor — the -D specialization mechanism."""

import pytest

from repro.kernelc.preprocessor import (Preprocessor, PreprocessorError,
                                        preprocess)


def pp(source, defines=None, headers=None):
    return " ".join(t.text for t in preprocess(source, defines, headers))


class TestDefines:
    def test_command_line_define(self):
        assert pp("int x = N;", {"N": 32}) == "int x = 32 ;"

    def test_float_define(self):
        assert pp("float x = F;", {"F": 2.5}) == "float x = 2.5 ;"

    def test_bool_define(self):
        assert pp("x = FLAG;", {"FLAG": True}) == "x = 1 ;"

    def test_expression_define(self):
        assert pp("x = S;", {"S": "a * b"}) == "x = a * b ;"

    def test_object_macro(self):
        assert pp("#define N 8\nint x = N;") == "int x = 8 ;"

    def test_macro_redefinition_uses_latest(self):
        assert pp("#define N 1\n#define N 2\nx = N;") == "x = 2 ;"

    def test_undef(self):
        assert pp("#define N 1\n#undef N\nx = N;") == "x = N ;"

    def test_function_macro(self):
        src = "#define SQ(x) ((x)*(x))\ny = SQ(a+1);"
        assert pp(src) == "y = ( ( a + 1 ) * ( a + 1 ) ) ;"

    def test_function_macro_two_args(self):
        src = "#define ADD(a,b) (a+b)\ny = ADD(1, 2);"
        assert pp(src) == "y = ( 1 + 2 ) ;"

    def test_function_macro_not_invoked(self):
        src = "#define F(x) x\ny = F;"
        assert pp(src) == "y = F ;"

    def test_nested_macro_expansion(self):
        src = "#define A B\n#define B 5\nx = A;"
        assert pp(src) == "x = 5 ;"

    def test_self_referential_macro_terminates(self):
        src = "#define A A + 1\nx = A;"
        assert pp(src) == "x = A + 1 ;"

    def test_macro_args_with_nested_parens(self):
        src = "#define F(x) [x]\ny = F(g(1, 2));"
        assert pp(src) == "y = [ g ( 1 , 2 ) ] ;"

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#define F(a,b) a\nF(1);")

    def test_stringize(self):
        src = '#define S(x) #x\nname = S(hello);'
        assert '"hello"' in pp(src)

    def test_token_paste(self):
        src = "#define GLUE(a,b) a##b\nint GLUE(foo, bar);"
        assert pp(src) == "int foobar ;"


class TestConditionals:
    def test_ifdef_taken(self):
        assert pp("#ifdef X\na\n#endif", {"X": 1}) == "a"

    def test_ifdef_not_taken(self):
        assert pp("#ifdef X\na\n#endif") == ""

    def test_ifndef(self):
        assert pp("#ifndef X\na\n#endif") == "a"

    def test_else(self):
        assert pp("#ifdef X\na\n#else\nb\n#endif") == "b"

    def test_elif(self):
        src = "#if A == 1\none\n#elif A == 2\ntwo\n#else\nother\n#endif"
        assert pp(src, {"A": 2}) == "two"
        assert pp(src, {"A": 1}) == "one"
        assert pp(src, {"A": 9}) == "other"

    def test_nested_conditionals(self):
        src = "#ifdef A\n#ifdef B\nab\n#else\na\n#endif\n#endif"
        assert pp(src, {"A": 1, "B": 1}) == "ab"
        assert pp(src, {"A": 1}) == "a"
        assert pp(src) == ""

    def test_if_defined(self):
        assert pp("#if defined(X)\na\n#endif", {"X": 1}) == "a"
        assert pp("#if defined X\na\n#endif", {"X": 1}) == "a"

    def test_if_arithmetic(self):
        assert pp("#if 2 + 3 * 4 == 14\nyes\n#endif") == "yes"

    def test_if_comparison_chain(self):
        assert pp("#if N >= 200\nfermi\n#else\ntesla\n#endif",
                  {"N": 200}) == "fermi"

    def test_if_logical(self):
        assert pp("#if defined(A) && B > 1\nx\n#endif",
                  {"A": 1, "B": 2}) == "x"

    def test_if_unknown_identifier_is_zero(self):
        assert pp("#if UNKNOWN\na\n#else\nb\n#endif") == "b"

    def test_if_ternary(self):
        assert pp("#if 1 ? 2 : 0\nyes\n#endif") == "yes"

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef X\na")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#endif")

    def test_error_directive(self):
        with pytest.raises(PreprocessorError, match="bad config"):
            pp("#error bad config")

    def test_error_in_untaken_branch_ignored(self):
        assert pp("#ifdef X\n#error no\n#endif\nok") == "ok"

    def test_cuda_arch_conditional(self):
        """The OpenCV-style compute-capability switch (§2.6)."""
        src = ("#if __CUDA_ARCH__ >= 200\nint t = 8;\n"
               "#else\nint t = 4;\n#endif")
        assert pp(src, {"__CUDA_ARCH__": 200}) == "int t = 8 ;"
        assert pp(src, {"__CUDA_ARCH__": 130}) == "int t = 4 ;"


class TestInclude:
    def test_include_virtual_header(self):
        headers = {"util.h": "#define N 4\n"}
        assert pp('#include "util.h"\nx = N;', headers=headers) == "x = 4 ;"

    def test_include_angle_brackets(self):
        headers = {"cuda.h": "int fromheader;"}
        assert pp("#include <cuda.h>", headers=headers) == "int fromheader ;"

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessorError):
            pp('#include "nope.h"')

    def test_include_guard_pattern(self):
        headers = {"g.h": "#ifndef G_H\n#define G_H\nint once;\n#endif\n"}
        out = pp('#include "g.h"\n#include "g.h"', headers=headers)
        assert out == "int once ;"


class TestCtRtToggles:
    """The Appendix-B flexible specialization pattern."""

    SRC = ("#ifdef CT_N\n#define N_VAL (N)\n#else\n#define N_VAL (n)\n"
           "#endif\nx = N_VAL;")

    def test_runtime_mode(self):
        assert pp(self.SRC) == "x = ( n ) ;"

    def test_specialized_mode(self):
        assert pp(self.SRC, {"CT_N": 1, "N": 64}) == "x = ( 64 ) ;"


class TestPragmaUnroll:
    def test_pragma_unroll_marker(self):
        out = pp("#pragma unroll\nfor(;;);")
        assert out.startswith("__pragma_unroll ( )")

    def test_pragma_unroll_count(self):
        out = pp("#pragma unroll 4\nfor(;;);")
        assert "__pragma_unroll ( 4 )" in out

    def test_other_pragma_dropped(self):
        assert pp("#pragma once\nx;") == "x ;"

"""CPU/FPGA baseline models and the reporting helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cpu import CPUSpec, XEON_2008, cpu_time
from repro.baselines.fpga import FPGASpec, PIV_FPGA, fpga_piv_time
from repro.reporting import format_table, speedup


class TestCPUModel:
    def test_compute_bound_scales_with_threads(self):
        one = cpu_time(XEON_2008, 1e9, 0, threads=1)
        four = cpu_time(XEON_2008, 1e9, 0, threads=4)
        assert one / four == pytest.approx(4.0, rel=1e-6)

    def test_threads_capped_at_cores(self):
        four = cpu_time(XEON_2008, 1e9, 0, threads=4)
        sixteen = cpu_time(XEON_2008, 1e9, 0, threads=16)
        assert four == sixteen

    def test_memory_bound_ignores_threads(self):
        a = cpu_time(XEON_2008, 1.0, 1e9, threads=1)
        b = cpu_time(XEON_2008, 1.0, 1e9, threads=4)
        assert a == b

    @settings(max_examples=50)
    @given(flops=st.floats(1, 1e12), nbytes=st.floats(0, 1e12))
    def test_time_positive_and_monotone(self, flops, nbytes):
        t = cpu_time(XEON_2008, flops, nbytes)
        assert t > 0
        assert cpu_time(XEON_2008, flops * 2, nbytes) >= t


class TestFPGAModel:
    def test_content_independent(self):
        assert fpga_piv_time(PIV_FPGA, 100, 256, 81) == \
            fpga_piv_time(PIV_FPGA, 100, 256, 81)

    def test_linear_in_windows(self):
        t1 = fpga_piv_time(PIV_FPGA, 100, 256, 81) - PIV_FPGA.frame_overhead
        t2 = fpga_piv_time(PIV_FPGA, 200, 256, 81) - PIV_FPGA.frame_overhead
        assert t2 == pytest.approx(2 * t1)

    def test_pe_parallelism_ceiling(self):
        """Below the PE count extra offsets are free (same passes)."""
        t_8 = fpga_piv_time(PIV_FPGA, 10, 64, 8)
        t_16 = fpga_piv_time(PIV_FPGA, 10, 64, 16)
        t_17 = fpga_piv_time(PIV_FPGA, 10, 64, 17)
        assert t_8 == t_16
        assert t_17 > t_16


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]],
                            title="T", note="n")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert lines[-1].startswith("note:")
        widths = {len(l) for l in lines[1:4]}
        assert len(widths) == 1  # aligned

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123], [1234567.0], [1.5]])
        assert "0.000123" in text
        assert "1.23e+06" in text
        assert "1.5" in text

    def test_speedup_guards_zero(self):
        assert speedup(1.0, 0.0) == float("inf")
        assert speedup(2.0, 1.0) == 2.0

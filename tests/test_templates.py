"""Tests for the CT/RT toggle scaffolding (templates module)."""

import pytest

from repro.kernelc import nvcc
from repro.kernelc.templates import (FLEXIBLE_MATHTEST, ctrt_block,
                                     specialization_defines)


class TestCtrtBlock:
    def test_generates_toggle_per_parameter(self):
        text = ctrt_block({"FOO": "fooArg", "BAR": "a * b"})
        assert "#ifdef CT_FOO" in text
        assert "#define FOO_VAL (FOO)" in text
        assert "#define FOO_VAL (fooArg)" in text
        assert "#define BAR_VAL (a * b)" in text

    def test_compiles_in_both_regimes(self):
        src = ctrt_block({"K": "k"}) + """
        __global__ void f(float* o, int k) {
            o[threadIdx.x] = (float)K_VAL;
        }
        """
        re_mod = nvcc(src)
        sk_mod = nvcc(src, defines={"CT_K": 1, "K": 42})
        assert "ld.param" in re_mod.kernel("f").to_ptx()
        assert "42" in sk_mod.kernel("f").to_ptx()


class TestSpecializationDefines:
    def test_all_parameters_by_default(self):
        d = specialization_defines({"A": 1, "B": 2})
        assert d == {"CT_A": 1, "A": 1, "CT_B": 1, "B": 2}

    def test_subset_selection(self):
        d = specialization_defines({"A": 1, "B": 2}, enable=["B"])
        assert d == {"CT_B": 1, "B": 2}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            specialization_defines({"A": 1}, enable=["Z"])


class TestFlexibleMathtest:
    def test_has_all_four_toggles(self):
        for name in ("LOOP_COUNT", "ARG_A", "ARG_B", "BLOCK_DIM_X"):
            assert f"CT_{name}" in FLEXIBLE_MATHTEST

    def test_re_compilation_reads_all_params(self):
        ptx = nvcc(FLEXIBLE_MATHTEST).kernel("mathTest").to_ptx()
        for param in ("argA", "argB", "loopCount"):
            assert param in ptx

    def test_sk_compilation_ignores_params(self):
        """Appendix D: 'The specialized PTX kernel contains no
        references to the input arguments' (except the pointers)."""
        defines = specialization_defines({
            "LOOP_COUNT": 3, "ARG_A": 2, "ARG_B": 5, "BLOCK_DIM_X": 64})
        ptx = nvcc(FLEXIBLE_MATHTEST, defines=defines) \
            .kernel("mathTest").to_ptx()
        for param in ("argA", "argB", "loopCount"):
            assert f"[%{param}]" not in ptx
        # Signature is preserved for interchangeability.
        assert ".param s32 argA" in ptx

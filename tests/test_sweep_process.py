"""Process-pool sweeps: ordering, bit-identity, chaos, ergonomics.

The contract under test: a sweep's result is a pure function of
(runner, grid) — worker count, pool flavor, and completion order must
leave no trace in the records.
"""

import numpy as np
import pytest

from repro.apps.backprojection import BPProblem
from repro.apps.harness import ProblemSpec
from repro.apps.piv import PIVProblem
from repro.apps.template_matching import MatchProblem
from repro.faults import FaultPlan
from repro.tuning.app_sweeps import HarnessRunner, harness_sweep
from repro.tuning.sweep import (SweepRecord, Sweeper, best_record,
                                grid_configs)

# Small grids: every process test pays real subprocess overhead.
APP_GRIDS = {
    "piv": (
        PIVProblem("sp", 40, 40, mask=8, offs=3),
        {"rb": [1, 2], "threads": [32, 64]},
    ),
    "template_matching": (
        MatchProblem("sp", frame_h=60, frame_w=80, tmpl_h=16,
                     tmpl_w=12, shift_h=5, shift_w=5, n_frames=1),
        {"tile": [(8, 8), (16, 8)], "threads": [32]},
    ),
    "backprojection": (
        BPProblem("sp", nx=8, ny=8, nz=6, n_proj=4, det_u=12,
                  det_v=10),
        {"block": [(8, 4), (4, 4)], "zb": [1, 2]},
    ),
}


def _sweep(app, jobs=1, pool="thread", fault_plan=None):
    problem, axes = APP_GRIDS[app]
    return harness_sweep(app, problem, axes, seed=11,
                         memory_bytes=8 << 20, fault_plan=fault_plan,
                         jobs=jobs, pool=pool)


def _comparable(records):
    """The fields that must not depend on how the sweep was executed."""
    return [(r.index, r.config, r.seconds, r.reg_count, r.occupancy,
             r.valid, r.error, r.counters) for r in records]


class TestOrderingAndIdentity:
    @pytest.mark.parametrize("pool", ["thread", "process"])
    @pytest.mark.parametrize("app", sorted(APP_GRIDS))
    def test_parallel_matches_sequential(self, app, pool):
        # Satellite contract: records come back in grid order with
        # identical contents regardless of jobs / pool flavor.
        seq = _sweep(app, jobs=1)
        par = _sweep(app, jobs=4, pool=pool)
        assert _comparable(par.records) == _comparable(seq.records)
        assert par.cache_report == seq.cache_report
        assert (best_record(par.records).config
                == best_record(seq.records).config)

    def test_records_sorted_by_grid_index(self):
        # Uneven per-config cost makes completion order differ from
        # submission order; the result must not show it.
        import time

        def run(config):
            time.sleep(0.02 * (3 - config["n"] % 4))
            return SweepRecord(config=config, seconds=float(config["n"]))

        configs = grid_configs(n=list(range(8)))
        records = Sweeper(run, jobs=4).sweep(configs)
        assert [r.config["n"] for r in records] == list(range(8))
        assert [r.index for r in records] == list(range(8))


class TestProcessPoolErgonomics:
    def test_closure_gets_actionable_error(self):
        img = np.zeros((4, 4), np.float32)

        def run(config):
            return SweepRecord(config=config, seconds=float(img.sum()))

        sweeper = Sweeper(run, jobs=2, pool="process")
        with pytest.raises(ValueError, match="HarnessRunner"):
            sweeper.sweep(grid_configs(n=[1, 2]))

    def test_bad_pool_and_jobs_rejected(self):
        run = HarnessRunner("piv", ProblemSpec(
            "piv", APP_GRIDS["piv"][0]))
        with pytest.raises(ValueError):
            Sweeper(run, pool="fiber")
        with pytest.raises(ValueError):
            Sweeper(run, jobs=0)

    def test_spawn_start_method_supported(self):
        # Cold interpreters re-import repro from PYTHONPATH; one tiny
        # config keeps it cheap.
        problem, _ = APP_GRIDS["piv"]
        sweeper = harness_sweep("piv", problem,
                                {"rb": [2], "threads": [32, 64]},
                                seed=11, memory_bytes=8 << 20,
                                jobs=2, pool="process",
                                start_method="spawn")
        assert all(r.valid for r in sweeper.records)
        baseline = _sweep("piv", jobs=1)
        assert [r.seconds for r in sweeper.records] == \
            [r.seconds for r in baseline.records
             if r.config["rb"] == 2]


class TestChaosUnderProcessPool:
    def test_fault_plan_reinstalled_in_workers(self):
        # Satellite 6: the seeded FaultPlan ships inside each
        # RunRequest and the worker rebuilds its injector, so a chaos
        # sweep behaves identically inline and across processes.
        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        inline = _sweep("template_matching", jobs=1, fault_plan=plan)
        procs = _sweep("template_matching", jobs=2, pool="process",
                       fault_plan=plan)
        assert _comparable(procs.records) == _comparable(inline.records)
        # The fault actually fired (absorbed by the compile retry
        # budget) — this was not a fault-free run.
        assert all(r.valid for r in procs.records)
        assert any(r.faults.get("nvcc.compile") for r in procs.records)
        assert [r.faults for r in procs.records] == \
            [r.faults for r in inline.records]

    def test_typed_failures_survive_process_boundary(self):
        # PIV compiles outside any retry wrapper: the same plan is a
        # typed CompileFault in every worker, recorded per-record.
        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        inline = _sweep("piv", jobs=1, fault_plan=plan)
        procs = _sweep("piv", jobs=2, pool="process", fault_plan=plan)
        assert _comparable(procs.records) == _comparable(inline.records)
        assert not any(r.valid for r in procs.records)
        assert all("CompileFault" in r.error for r in procs.records)
        assert procs.error_taxonomy() == inline.error_taxonomy()

"""Backprojection application tests (§5.3)."""

import numpy as np
import pytest

from repro.apps.backprojection import (Backprojector, BPConfig, BPProblem,
                                       backproject_reference,
                                       cpu_backproject_seconds)
from repro.data.phantom import (ConeBeamGeometry, forward_project,
                                shepp_logan_phantom)
from repro.gpupf import KernelCache

# Paper-shaped scale (quarter-resolution of the dissertation's 64^3
# reconstructions): affordable now that the batched engine absorbs the
# interpreter cost.
PROBLEM = BPProblem("T", nx=24, ny=24, nz=16, n_proj=12, det_u=32,
                    det_v=24)


@pytest.fixture(scope="module")
def projections():
    rng = np.random.default_rng(0)
    return rng.random((PROBLEM.n_proj, PROBLEM.det_v,
                       PROBLEM.det_u)).astype(np.float32)


@pytest.fixture(scope="module")
def reference(projections):
    return backproject_reference(projections, PROBLEM.geometry(),
                                 PROBLEM.nx, PROBLEM.ny, PROBLEM.nz)


class TestCorrectness:
    @pytest.mark.parametrize("specialize", [True, False])
    def test_matches_reference(self, projections, reference, specialize):
        bp = Backprojector(PROBLEM,
                           BPConfig(block_x=8, block_y=8, zb=4,
                                    specialize=specialize),
                           cache=KernelCache())
        r = bp.run(projections)
        np.testing.assert_allclose(r.volume, reference, atol=1e-4)

    # zb=3 does not divide nz (remainder handling); zb=8 does.  zb=1
    # (no blocking) adds nothing the zb sweep in the tuning tests
    # doesn't already cover.
    @pytest.mark.parametrize("zb", [3, 8])
    def test_zb_invariant(self, projections, reference, zb):
        bp = Backprojector(PROBLEM, BPConfig(block_x=8, block_y=8,
                                             zb=zb),
                           cache=KernelCache())
        np.testing.assert_allclose(bp.run(projections).volume,
                                   reference, atol=1e-4)

    def test_block_shape_invariant(self, projections, reference):
        bp = Backprojector(PROBLEM, BPConfig(block_x=16, block_y=4,
                                             zb=4),
                           cache=KernelCache())
        np.testing.assert_allclose(bp.run(projections).volume,
                                   reference, atol=1e-4)

    def test_phantom_reconstruction_correlates(self):
        """End-to-end: forward project a phantom, backproject, and the
        result must correlate with the phantom's mid-slice structure
        (unfiltered backprojection is blurry, not wrong)."""
        n = 16
        phantom = shepp_logan_phantom(n)
        geom = ConeBeamGeometry(n_proj=16, det_u=24, det_v=24)
        projs = forward_project(phantom, geom)
        problem = BPProblem("ph", nx=n, ny=n, nz=n, n_proj=16, det_u=24,
                            det_v=24)
        bp = Backprojector(problem, BPConfig(block_x=8, block_y=8, zb=4),
                           cache=KernelCache())
        volume = bp.run(projs).volume
        mid_p = phantom[n // 2].ravel()
        mid_v = volume[n // 2].ravel()
        corr = np.corrcoef(mid_p, mid_v)[0, 1]
        assert corr > 0.6


class TestShape:
    def test_sk_fewer_registers_and_faster(self, projections):
        # Sampled timing: the SK/RE cycle-count comparison doesn't need
        # every block's outputs (correctness is covered above).
        cache = KernelCache()
        sk = Backprojector(PROBLEM, BPConfig(zb=4, specialize=True,
                                             functional=False,
                                             sample_blocks=2),
                           cache=cache)
        re = Backprojector(PROBLEM, BPConfig(zb=4, specialize=False,
                                             functional=False,
                                             sample_blocks=2),
                           cache=cache)
        r_sk = sk.run(projections)
        r_re = re.run(projections)
        assert r_sk.reg_count <= r_re.reg_count
        assert r_sk.kernel_seconds < r_re.kernel_seconds

    def test_gpu_beats_modeled_cpu_at_scale(self):
        """At paper-scale volumes the GPU wins (Table 6.12); toy sizes
        are launch-overhead bound.  Sampled timing keeps this fast."""
        big = BPProblem("big", nx=64, ny=64, nz=48, n_proj=32,
                        det_u=96, det_v=72)
        rng = np.random.default_rng(1)
        projs = rng.random((big.n_proj, big.det_v,
                            big.det_u)).astype(np.float32)
        bp = Backprojector(big, BPConfig(functional=False,
                                         sample_blocks=2),
                           cache=KernelCache())
        gpu_s = bp.run(projs).kernel_seconds
        cpu_s = cpu_backproject_seconds(big.nx, big.ny, big.nz,
                                        big.n_proj)
        assert gpu_s < cpu_s

    def test_too_many_projections_rejected(self):
        with pytest.raises(ValueError):
            Backprojector(BPProblem("big", 16, 16, 16, n_proj=500,
                                    det_u=16, det_v=16),
                          cache=KernelCache())

    def test_projection_shape_validated(self, projections):
        bp = Backprojector(PROBLEM, BPConfig(), cache=KernelCache())
        with pytest.raises(ValueError):
            bp.run(projections[:, :-1])


class TestTexturePath:
    def test_texture_variant_matches_global(self, projections,
                                            reference):
        bp = Backprojector(PROBLEM, BPConfig(block_x=8, block_y=8,
                                             zb=4, use_texture=True),
                           cache=KernelCache())
        result = bp.run(projections)
        np.testing.assert_allclose(result.volume, reference, atol=2e-4)

    def test_texture_variant_uses_fewer_registers(self, projections):
        cache = KernelCache()
        glob = Backprojector(PROBLEM, BPConfig(zb=4), cache=cache)
        tex = Backprojector(PROBLEM, BPConfig(zb=4, use_texture=True),
                            cache=cache)
        assert tex.kernel.reg_count < glob.kernel.reg_count
        assert "tex.2d" in tex.kernel.to_ptx().replace("tex.", "tex.")

"""Shared test utilities: compile-and-run harness for kernel snippets."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.kernelc import nvcc


class KernelHarness:
    """Compile a kernel and run it with NumPy arrays as buffers.

    Array arguments are copied to the device before launch and read
    back after; scalars pass through.  Returns the output arrays.
    """

    def __init__(self, source: str, kernel: Optional[str] = None,
                 defines: Optional[Dict[str, object]] = None,
                 arch: str = "sm_20", opt_level: int = 3,
                 spec=None, headers=None):
        self.module = nvcc(source, defines=defines, arch=arch,
                           opt_level=opt_level, headers=headers)
        if kernel is None:
            kernel = next(iter(self.module.kernels))
        self.kernel = self.module.kernel(kernel)
        if spec is None:
            spec = TESLA_C1060 if arch == "sm_13" else TESLA_C2070
        self.gpu = GPU(spec)

    def __call__(self, grid, block, *args, dynamic_smem: int = 0,
                 const: Optional[Dict[str, np.ndarray]] = None,
                 functional: bool = True, sample_blocks: int = 8,
                 engine: Optional[str] = None):
        """Run the kernel; returns (outputs, launch_result).

        ``args`` entries that are ndarrays are treated as in/out
        buffers; their post-launch contents are returned in order.
        """
        if const:
            for name, array in const.items():
                self.gpu.memcpy_to_symbol(self.module, name, array)
        dev_args = []
        buffers: List[Tuple[int, np.ndarray]] = []
        for a in args:
            if isinstance(a, np.ndarray):
                addr = self.gpu.alloc_array(a)
                buffers.append((addr, a))
                dev_args.append(addr)
            else:
                dev_args.append(a)
        result = self.gpu.launch(self.kernel, grid, block, dev_args,
                                 dynamic_smem=dynamic_smem,
                                 functional=functional,
                                 sample_blocks=sample_blocks,
                                 engine=engine)
        outputs = [self.gpu.memcpy_dtoh(addr, arr.dtype, arr.size)
                   .reshape(arr.shape)
                   for addr, arr in buffers]
        return outputs, result


def run_kernel(source: str, grid, block, *args, **kwargs):
    """One-shot convenience wrapper around :class:`KernelHarness`."""
    const = kwargs.pop("const", None)
    dynamic_smem = kwargs.pop("dynamic_smem", 0)
    harness = KernelHarness(source, **kwargs)
    return harness(grid, block, *args, dynamic_smem=dynamic_smem,
                   const=const)

"""Shared test utilities: compile-and-run harness for kernel snippets."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.kernelc import nvcc


class KernelHarness:
    """Compile a kernel and run it with NumPy arrays as buffers.

    Array arguments are copied to the device before launch and read
    back after; scalars pass through.  Returns the output arrays.
    """

    def __init__(self, source: str, kernel: Optional[str] = None,
                 defines: Optional[Dict[str, object]] = None,
                 arch: str = "sm_20", opt_level: int = 3,
                 spec=None, headers=None):
        self.module = nvcc(source, defines=defines, arch=arch,
                           opt_level=opt_level, headers=headers)
        if kernel is None:
            kernel = next(iter(self.module.kernels))
        self.kernel = self.module.kernel(kernel)
        if spec is None:
            spec = TESLA_C1060 if arch == "sm_13" else TESLA_C2070
        self.gpu = GPU(spec)

    def __call__(self, grid, block, *args, dynamic_smem: int = 0,
                 const: Optional[Dict[str, np.ndarray]] = None,
                 functional: bool = True, sample_blocks: int = 8,
                 engine: Optional[str] = None):
        """Run the kernel; returns (outputs, launch_result).

        ``args`` entries that are ndarrays are treated as in/out
        buffers; their post-launch contents are returned in order.
        """
        if const:
            for name, array in const.items():
                self.gpu.memcpy_to_symbol(self.module, name, array)
        dev_args = []
        buffers: List[Tuple[int, np.ndarray]] = []
        for a in args:
            if isinstance(a, np.ndarray):
                addr = self.gpu.alloc_array(a)
                buffers.append((addr, a))
                dev_args.append(addr)
            else:
                dev_args.append(a)
        result = self.gpu.launch(self.kernel, grid, block, dev_args,
                                 dynamic_smem=dynamic_smem,
                                 functional=functional,
                                 sample_blocks=sample_blocks,
                                 engine=engine)
        outputs = [self.gpu.memcpy_dtoh(addr, arr.dtype, arr.size)
                   .reshape(arr.shape)
                   for addr, arr in buffers]
        return outputs, result


def assert_same_launch(src, grid, block, *arrays, scalars=(),
                       arch="sm_20", functional=True, sample_blocks=8,
                       const=None, defines=None):
    """Run serial and batched with identical inputs; demand equality.

    The batched engine's whole contract: bit-identical device memory,
    per-warp stats, and Timing versus the serial oracle.
    """
    results = {}
    for engine in ("serial", "batched"):
        h = KernelHarness(src, arch=arch, defines=defines)
        args = [a.copy() for a in arrays] + list(scalars)
        outputs, res = h(grid, block, *args, functional=functional,
                         sample_blocks=sample_blocks, const=const,
                         engine=engine)
        results[engine] = (outputs, res)
    (out_s, res_s), (out_b, res_b) = results["serial"], results["batched"]
    for a, b in zip(out_s, out_b):
        assert a.tobytes() == b.tobytes()
    assert res_s.blocks_executed == res_b.blocks_executed
    assert len(res_s.stats) == len(res_b.stats)
    for bs, bb in zip(res_s.stats, res_b.stats):
        assert bs.warps == bb.warps
    assert res_s.timing == res_b.timing
    return results


def run_kernel(source: str, grid, block, *args, **kwargs):
    """One-shot convenience wrapper around :class:`KernelHarness`."""
    const = kwargs.pop("const", None)
    dynamic_smem = kwargs.pop("dynamic_smem", 0)
    harness = KernelHarness(source, **kwargs)
    return harness(grid, block, *args, dynamic_smem=dynamic_smem,
                   const=const)

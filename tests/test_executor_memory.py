"""Shared / constant / local memory and atomics."""

import numpy as np
import pytest

from repro.gpusim.executor import SimError
from repro.gpusim.memory import MemoryError_
from tests.helpers import KernelHarness, run_kernel

rng = np.random.default_rng(11)

REDUCE_SRC = """
__global__ void reduce(const float* in, float* out, int n) {
    __shared__ float sdata[BLOCK];
    unsigned int tid = threadIdx.x;
    unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
    sdata[tid] = i < n ? in[i] : 0.0f;
    __syncthreads();
    for (unsigned int s = BLOCK / 2; s > 0; s >>= 1) {
        if (tid < s) sdata[tid] += sdata[tid + s];
        __syncthreads();
    }
    if (tid == 0) out[blockIdx.x] = sdata[0];
}
"""


class TestSharedMemory:
    def test_block_reduction_tree(self):
        """The §2.2 in-block parallel reduction, exact for integers."""
        n = 1000
        x = rng.integers(0, 100, n).astype(np.float32)
        blocks = (n + 127) // 128
        out = np.zeros(blocks, np.float32)
        (_, out_), _ = run_kernel(REDUCE_SRC, blocks, 128, x, out, n,
                                  defines={"BLOCK": 128})
        expected = [x[b * 128:(b + 1) * 128].sum() for b in range(blocks)]
        np.testing.assert_allclose(out_, expected, rtol=1e-6)

    @pytest.mark.parametrize("block", [32, 64, 256, 512])
    def test_reduction_various_block_sizes(self, block):
        n = block * 3
        x = rng.integers(0, 10, n).astype(np.float32)
        out = np.zeros(3, np.float32)
        (_, out_), _ = run_kernel(REDUCE_SRC, 3, block, x, out, n,
                                  defines={"BLOCK": block})
        expected = x.reshape(3, block).sum(axis=1)
        np.testing.assert_allclose(out_, expected, rtol=1e-6)

    def test_shared_transpose_tile(self):
        src = """
        __global__ void tr(const float* in, float* out, int w) {
            __shared__ float tile[8][?];
            0;
        }
        """
        # 2D shared arrays are not part of the subset; flat + manual
        # indexing (as the dissertation's kernels do) is the idiom:
        src = """
        __global__ void tr(const float* in, float* out, int w) {
            __shared__ float tile[64];
            int x = threadIdx.x; int y = threadIdx.y;
            tile[y * 8 + x] = in[(blockIdx.y * 8 + y) * w
                                 + blockIdx.x * 8 + x];
            __syncthreads();
            out[(blockIdx.x * 8 + y) * w + blockIdx.y * 8 + x]
                = tile[x * 8 + y];
        }
        """
        w = 16
        a = rng.random((w, w)).astype(np.float32)
        out = np.zeros((w, w), np.float32)
        (_, out_), _ = run_kernel(src, (2, 2), (8, 8), a, out, w)
        np.testing.assert_array_equal(out_, a.T)

    def test_shared_bank_conflict_counted(self):
        """Stride-16 access on CC1.3 (16 banks) must cost replays."""
        conflict_src = """
        __global__ void k(float* out) {
            __shared__ float buf[512];
            int t = threadIdx.x;
            buf[t * 16] = (float)t;
            __syncthreads();
            out[t] = buf[t * 16];
        }
        """
        clean_src = conflict_src.replace("* 16", "* 1")
        h_bad = KernelHarness(conflict_src, arch="sm_13")
        h_ok = KernelHarness(clean_src, arch="sm_13")
        out = np.zeros(32, np.float32)
        _, res_bad = h_bad(1, 32, out)
        _, res_ok = h_ok(1, 32, out)
        assert res_bad.timing.cycles > res_ok.timing.cycles

    def test_two_shared_arrays_do_not_alias(self):
        src = """
        __global__ void two(int* out) {
            __shared__ int a[32];
            __shared__ int b[32];
            int t = threadIdx.x;
            a[t] = t; b[t] = 100 + t;
            __syncthreads();
            out[t] = a[t] + b[t];
        }
        """
        out = np.zeros(32, np.int32)
        (out_,), _ = run_kernel(src, 1, 32, out)
        np.testing.assert_array_equal(out_, np.arange(32) * 2 + 100)


class TestConstantMemory:
    def test_constant_filter(self):
        src = """
        __constant__ float coeffs[8];
        __global__ void conv(const float* in, float* out, int n,
                             int taps) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i >= n) return;
            float acc = 0.0f;
            for (int k = 0; k < taps; k++) acc += in[i + k] * coeffs[k];
            out[i] = acc;
        }
        """
        taps = 5
        n = 100
        x = rng.random(n + taps).astype(np.float32)
        c = rng.random(8).astype(np.float32)
        out = np.zeros(n, np.float32)
        (_, out_), _ = run_kernel(src, 4, 32, x, out, n, taps,
                                  const={"coeffs": c})
        expected = np.array(
            [np.dot(x[i : i + taps], c[:taps]) for i in range(n)],
            dtype=np.float32)
        np.testing.assert_allclose(out_, expected, rtol=1e-5)

    def test_constant_size_must_be_static(self):
        """§2.4: constant memory size is fixed at compile time; with
        specialization the ceiling becomes adjustable per problem."""
        src = """
        __constant__ float coeffs[TAPS];
        __global__ void k(float* out) { out[0] = coeffs[0]; }
        """
        h = KernelHarness(src, defines={"TAPS": 16})
        decl = h.module.ir.const_globals["coeffs"]
        assert decl.count == 16

    def test_unknown_symbol_raises(self):
        src = "__global__ void k(float* o) { o[0] = 1.0f; }"
        h = KernelHarness(src)
        with pytest.raises(SimError):
            h.gpu.memcpy_to_symbol(h.module, "nope",
                                   np.zeros(4, np.float32))


class TestAtomics:
    def test_atomic_histogram(self):
        src = """
        __global__ void hist(const int* data, int* bins, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) atomicAdd(&bins[data[i]], 1);
        }
        """
        n = 1024
        data = rng.integers(0, 16, n, dtype=np.int32)
        bins = np.zeros(16, np.int32)
        (_, bins_), _ = run_kernel(src, 8, 128, data, bins, n)
        np.testing.assert_array_equal(bins_, np.bincount(data,
                                                         minlength=16))

    def test_atomic_add_float(self):
        src = """
        __global__ void acc(const float* x, float* total, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) atomicAdd(total, x[i]);
        }
        """
        x = rng.random(256).astype(np.float32)
        total = np.zeros(1, np.float32)
        (_, total_), _ = run_kernel(src, 2, 128, x, total, 256)
        np.testing.assert_allclose(total_[0], x.sum(), rtol=1e-4)


class TestLocalMemory:
    def test_dynamic_indexed_local_array(self):
        """A locally indexed array that cannot be scalarized."""
        src = """
        __global__ void rot(const int* x, int* out, int n, int shift) {
            int buf[8];
            int i = threadIdx.x;
            for (int k = 0; k < 8; k++) buf[k] = x[i * 8 + k];
            for (int k = 0; k < 8; k++)
                out[i * 8 + k] = buf[(k + shift) % 8];
        }
        """
        x = rng.integers(0, 100, 4 * 8, dtype=np.int32)
        out = np.zeros(4 * 8, np.int32)
        (_, out_), _ = run_kernel(src, 1, 4, x, out, 4, 3)
        expected = np.roll(x.reshape(4, 8), -3, axis=1).reshape(-1)
        np.testing.assert_array_equal(out_, expected)


class TestBoundsChecking:
    def test_out_of_bounds_global_read(self):
        src = """
        __global__ void oob(float* p) { p[0] = p[1 << 30]; }
        """
        with pytest.raises(MemoryError_):
            run_kernel(src, 1, 1, np.zeros(4, np.float32))

    def test_shared_overflow(self):
        src = """
        __global__ void so(float* o) {
            __shared__ float b[16];
            b[threadIdx.x * 100] = 1.0f;
            o[0] = b[0];
        }
        """
        with pytest.raises(MemoryError_):
            run_kernel(src, 1, 32, np.zeros(4, np.float32))

"""Texture reference, sampling, and binding tests."""

import numpy as np
import pytest

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.gpusim.executor import SimError
from repro.kernelc import CompileError, nvcc

TEX2D_SRC = """
texture<float, 2> imgTex;
__global__ void sample(float* out, const float* xs, const float* ys,
                       int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = tex2D(imgTex, xs[i], ys[i]);
}
"""


def run_tex2d(img, xs, ys, address="clamp", filter="point",
              spec=TESLA_C2070):
    mod = nvcc(TEX2D_SRC, arch=spec.arch)
    gpu = GPU(spec)
    d_img = gpu.alloc_array(np.ascontiguousarray(img, np.float32))
    gpu.bind_texture(mod, "imgTex", d_img, width=img.shape[1],
                     height=img.shape[0], address=address,
                     filter=filter)
    n = len(xs)
    d_xs = gpu.alloc_array(np.asarray(xs, np.float32))
    d_ys = gpu.alloc_array(np.asarray(ys, np.float32))
    d_out = gpu.zeros(n, np.float32)
    gpu.launch(mod.kernel("sample"), (n + 31) // 32, 32,
               [d_out, d_xs, d_ys, n])
    return gpu.memcpy_dtoh(d_out, np.float32, n)


@pytest.fixture(scope="module")
def image():
    return np.arange(24, dtype=np.float32).reshape(4, 6)


class TestSampling:
    def test_point_at_centers(self, image):
        xs = [0.5, 1.5, 5.5]
        ys = [0.5, 2.5, 3.5]
        out = run_tex2d(image, xs, ys)
        np.testing.assert_array_equal(out, [image[0, 0], image[2, 1],
                                            image[3, 5]])

    def test_linear_interpolates_midpoints(self, image):
        # Halfway between texels (0,0) and (1,0) along x.
        out = run_tex2d(image, [1.0], [0.5], filter="linear")
        expected = (image[0, 0] + image[0, 1]) / 2
        np.testing.assert_allclose(out, [expected], rtol=1e-6)

    def test_clamp_addressing(self, image):
        out = run_tex2d(image, [-3.0, 100.0], [0.5, 0.5])
        np.testing.assert_array_equal(out, [image[0, 0], image[0, 5]])

    def test_wrap_addressing(self, image):
        out = run_tex2d(image, [6.5, 7.5], [0.5, 0.5], address="wrap")
        np.testing.assert_array_equal(out, [image[0, 0], image[0, 1]])

    def test_border_addressing_returns_zero(self, image):
        out = run_tex2d(image, [-3.0, 2.5], [0.5, 0.5],
                        address="border")
        np.testing.assert_array_equal(out, [0.0, image[0, 2]])

    def test_tex1dfetch_elementwise(self):
        src = """
        texture<float, 1> vecTex;
        __global__ void f(float* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = tex1Dfetch(vecTex, i);
        }
        """
        mod = nvcc(src)
        gpu = GPU(TESLA_C2070)
        v = np.random.default_rng(0).random(32).astype(np.float32)
        d_v = gpu.alloc_array(v)
        gpu.bind_texture(mod, "vecTex", d_v, width=32)
        d_out = gpu.zeros(32, np.float32)
        gpu.launch(mod.kernel("f"), 1, 32, [d_out, 32])
        np.testing.assert_array_equal(
            gpu.memcpy_dtoh(d_out, np.float32, 32), v)


class TestBindingValidation:
    def test_unbound_texture_faults_at_launch(self, image):
        mod = nvcc(TEX2D_SRC)
        gpu = GPU(TESLA_C2070)
        d_out = gpu.zeros(4, np.float32)
        d_c = gpu.alloc_array(np.zeros(4, np.float32))
        with pytest.raises(SimError, match="not bound"):
            gpu.launch(mod.kernel("sample"), 1, 4,
                       [d_out, d_c, d_c, 4])

    def test_unknown_texture_name_rejected(self, image):
        mod = nvcc(TEX2D_SRC)
        gpu = GPU(TESLA_C2070)
        with pytest.raises(SimError, match="no texture"):
            gpu.bind_texture(mod, "nope", 0, width=4)

    def test_bad_modes_rejected(self, image):
        mod = nvcc(TEX2D_SRC)
        gpu = GPU(TESLA_C2070)
        addr = gpu.alloc_array(image)
        with pytest.raises(SimError):
            gpu.bind_texture(mod, "imgTex", addr, width=6, height=4,
                             address="mirror")
        with pytest.raises(SimError):
            gpu.bind_texture(mod, "imgTex", addr, width=6, height=4,
                             filter="cubic")

    def test_dimensionality_checked_at_compile(self):
        src = """
        texture<float, 1> t;
        __global__ void k(float* o) {
            o[0] = tex2D(t, 0.5f, 0.5f);
        }
        """
        with pytest.raises(CompileError, match="1D"):
            nvcc(src)

    def test_unknown_reference_at_compile(self):
        src = """
        __global__ void k(float* o) {
            o[0] = tex1Dfetch(ghost, 0);
        }
        """
        with pytest.raises(CompileError, match="unknown texture"):
            nvcc(src)

    def test_works_on_both_devices(self, image):
        a = run_tex2d(image, [2.5], [1.5], spec=TESLA_C1060)
        b = run_tex2d(image, [2.5], [1.5], spec=TESLA_C2070)
        np.testing.assert_array_equal(a, b)

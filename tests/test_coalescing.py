"""Coalescing and bank-conflict model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import TESLA_C1060, TESLA_C2070
from repro.gpusim.coalescing import (global_transactions,
                                     global_transactions_batch,
                                     shared_conflict_factor)

FULL = np.ones(32, dtype=bool)


def seq_addrs(base=0, stride=4):
    return (base + np.arange(32, dtype=np.int64) * stride).astype(np.uint64)


class TestGlobalCoalescing:
    def test_sequential_cc20_one_line(self):
        assert global_transactions(seq_addrs(), FULL, 4, TESLA_C2070) == 1

    def test_sequential_cc13_two_halfwarps(self):
        # Aligned 128B of 4B accesses: one 64B segment per half-warp
        # after segment-size reduction -> 2 transactions.
        assert global_transactions(seq_addrs(), FULL, 4, TESLA_C1060) == 2

    def test_misaligned_cc20_two_lines(self):
        assert global_transactions(seq_addrs(base=64), FULL, 4,
                                   TESLA_C2070) == 2

    def test_strided_worst_case(self):
        addrs = seq_addrs(stride=128)
        assert global_transactions(addrs, FULL, 4, TESLA_C2070) == 32
        assert global_transactions(addrs, FULL, 4, TESLA_C1060) == 32

    def test_same_address_broadcast(self):
        addrs = np.zeros(32, dtype=np.uint64)
        assert global_transactions(addrs, FULL, 4, TESLA_C2070) == 1

    def test_inactive_lanes_ignored(self):
        addrs = seq_addrs(stride=128)
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        assert global_transactions(addrs, mask, 4, TESLA_C2070) == 1

    def test_no_active_lanes(self):
        assert global_transactions(seq_addrs(), np.zeros(32, bool), 4,
                                   TESLA_C2070) == 0

    @settings(max_examples=100)
    @given(stride=st.integers(1, 64), base=st.integers(0, 256))
    def test_monotone_vs_perfect(self, stride, base):
        """Any access pattern costs at least the sequential pattern."""
        addrs = seq_addrs(base=base * 4, stride=stride * 4)
        for dev in (TESLA_C1060, TESLA_C2070):
            txn = global_transactions(addrs, FULL, 4, dev)
            perfect = global_transactions(seq_addrs(), FULL, 4, dev)
            assert txn >= perfect

    def test_float8_double_counts_straddle(self):
        addrs = seq_addrs(stride=8)  # 256 bytes of doubles
        assert global_transactions(addrs, FULL, 8, TESLA_C2070) == 2


class TestBatchedGlobalCoalescing:
    """global_transactions_batch rows ≡ the scalar oracle, per member."""

    @pytest.mark.parametrize("itemsize", [1, 2, 4, 8])
    @pytest.mark.parametrize("device", [TESLA_C1060, TESLA_C2070],
                             ids=["cc13", "cc20"])
    def test_random_rows_match_oracle(self, itemsize, device):
        rng = np.random.default_rng(1000 + itemsize)
        M = 64
        addrs = (rng.integers(0, 4096, (M, 32)) * rng.integers(
            1, 5, (M, 32))).astype(np.uint64)
        mask = rng.random((M, 32)) < 0.8
        mask[0] = False          # fully inactive member
        mask[1] = True           # fully active member
        mask[2, 16:] = False     # one idle half-warp
        batch = global_transactions_batch(addrs, mask, itemsize, device)
        for i in range(M):
            assert batch[i] == global_transactions(addrs[i], mask[i],
                                                   itemsize, device), i

    @pytest.mark.parametrize("device", [TESLA_C1060, TESLA_C2070],
                             ids=["cc13", "cc20"])
    def test_structured_rows_match_oracle(self, device):
        # One member per classic regime, stacked into a single gang.
        lanes = np.arange(32, dtype=np.int64)
        rng = np.random.default_rng(7)
        rows = [lanes * 4,                     # aligned
                rng.permutation(32) * 4,       # permuted in-segment
                lanes * 4 + 4,                 # misaligned
                lanes * 8,                     # stride 2
                lanes * 16,                    # stride 4
                lanes * 128,                   # stride 32
                rng.integers(0, 1 << 20, 32),  # scattered
                np.zeros(32, np.int64)]        # broadcast
        addrs = np.stack(rows).astype(np.uint64)
        mask = np.ones(addrs.shape, bool)
        batch = global_transactions_batch(addrs, mask, 4, device)
        for i in range(len(rows)):
            assert batch[i] == global_transactions(addrs[i], mask[i],
                                                   4, device), i


class TestSharedBanks:
    def test_sequential_no_conflict(self):
        addrs = seq_addrs()
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C1060) == 1
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C2070) == 1

    def test_stride_16_conflicts_on_16_banks(self):
        addrs = seq_addrs(stride=64)  # word stride 16
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C1060) == 16
        # 32 banks: the 32 lanes hit 2 banks with 16 distinct words each.
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C2070) == 16

    def test_stride_2_conflict_differs_by_generation(self):
        addrs = seq_addrs(stride=8)  # word stride 2: even banks only
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C1060) == 2
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C2070) == 2

    def test_stride_32_worst_on_fermi(self):
        addrs = seq_addrs(stride=128)  # word stride 32
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C2070) == 32

    def test_broadcast_same_word(self):
        addrs = np.full(32, 64, dtype=np.uint64)
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C1060) == 1
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C2070) == 1

    def test_odd_stride_conflict_free(self):
        """Classic trick: padding to an odd stride removes conflicts."""
        addrs = seq_addrs(stride=68)  # word stride 17
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C1060) == 1
        assert shared_conflict_factor(addrs, FULL, 4, TESLA_C2070) == 1

    @settings(max_examples=100)
    @given(words=st.lists(st.integers(0, 1023), min_size=1, max_size=32))
    def test_factor_bounds(self, words):
        addrs = np.zeros(32, dtype=np.uint64)
        mask = np.zeros(32, dtype=bool)
        for i, w in enumerate(words):
            addrs[i] = w * 4
            mask[i] = True
        for dev in (TESLA_C1060, TESLA_C2070):
            f = shared_conflict_factor(addrs, mask, 4, dev)
            assert 1 <= f <= len(words)

"""Batched engine ≡ serial oracle, plan cache, and parallel sweeps.

The batched engine's contract is bit-exactness: for any launch, device
memory, every per-warp counter, and the derived Timing must equal the
serial path's.  These tests drive both engines over kernels chosen to
hit each mechanism that could break lockstep execution: intra-warp
divergence, block-dependent control flow (gang splits), barriers,
shared/constant/texture/local memory, atomics, and sampled launches.
"""

import gc
import pickle

import numpy as np
import pytest

from tests.helpers import KernelHarness, assert_same_launch
from repro.gpupf.cache import KernelCache
from repro.gpusim import (GPU, TESLA_C1060, TESLA_C2070,
                          clear_plan_cache, gang_cache_stats,
                          plan_cache_stats, plan_for)
from repro.kernelc import nvcc
from repro.tuning.sweep import SweepRecord, Sweeper, best_record


DIVERGENT_SRC = """
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = in[gid];
    float acc = 0.0f;
    for (int i = 0; i < gid % 11; ++i)   // data-dependent trip count
        acc += v * i;
    if (gid % 3 == 0) acc = -acc;        // divergent branch
    else if (gid % 3 == 1) acc += 1.0f;
    out[gid] = acc;
}
"""

BARRIER_SRC = """
__global__ void k(float* out, const float* in, int n) {
    __shared__ float buf[64];
    int tid = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + tid;
    buf[tid] = (gid < n) ? in[gid] : 0.0f;
    __syncthreads();
    float acc = 0.0f;
    for (int i = 0; i <= tid % 5; ++i)
        acc += buf[(tid + i) % blockDim.x];
    __syncthreads();
    buf[tid] = acc;
    __syncthreads();
    if (gid < n) out[gid] = buf[blockDim.x - 1 - tid];
}
"""

BLOCK_DIVERGENT_SRC = """
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = in[gid];
    // Uniform within a block, different across blocks: forces the
    // gang to split into per-branch fragments.
    if (blockIdx.x % 3 == 0) {
        for (int i = 0; i < (int)blockIdx.x % 7; ++i)
            v += 0.5f;                   // per-block trip counts
    } else if (blockIdx.x % 3 == 1) {
        v *= 2.0f;
    } else {
        v = -v;
    }
    out[gid] = v;
}
"""

EXIT_SRC = """
__global__ void k(int* out, const int* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    int v = in[gid];
    if (v < 0) { out[gid] = -1; return; }  // exit under divergence
    int acc = 0;
    for (int i = 0; i < v % 6; ++i) acc += i * v;
    out[gid] = acc;
}
"""

ATOMIC_SRC = """
__global__ void k(int* hist, const int* in, int n, int bins) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) atomicAdd(&hist[in[gid] % bins], 1);
}
"""

CONST_SRC = """
__constant__ float coeff[16];
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) out[gid] = in[gid] * coeff[gid % 16] + coeff[0];
}
"""

TEX_SRC = """
texture<float, 2> imgTex;
__global__ void k(float* out, const float* xs, const float* ys, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) out[gid] = tex2D(imgTex, xs[gid], ys[gid]);
}
"""


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_divergent_branches_match(seed):
    rng = np.random.default_rng(seed)
    n = 500
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(DIVERGENT_SRC, (7,), (96,), out, inp,
                       scalars=(n,))


@pytest.mark.parametrize("block", [(64,), (48,)])
def test_barrier_and_shared_match(block):
    # 48 threads: multi-warp block with a partial second warp.
    rng = np.random.default_rng(3)
    n = 6 * block[0]
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(BARRIER_SRC, (6,), block, out, inp, scalars=(n,))


def test_block_divergent_control_flow_match():
    # Every block takes its own path: the gang must split and still
    # reproduce serial stats per block.
    rng = np.random.default_rng(4)
    n = 9 * 64
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(BLOCK_DIVERGENT_SRC, (9,), (64,), out, inp,
                       scalars=(n,))


def test_exit_under_divergence_match():
    rng = np.random.default_rng(5)
    n = 300
    inp = rng.integers(-10, 10, n).astype(np.int32)
    out = np.zeros(n, np.int32)
    assert_same_launch(EXIT_SRC, (5,), (64,), out, inp, scalars=(n,))


def test_global_atomics_match():
    rng = np.random.default_rng(6)
    n = 400
    inp = rng.integers(0, 1000, n).astype(np.int32)
    hist = np.zeros(16, np.int32)
    assert_same_launch(ATOMIC_SRC, (4,), (128,), hist, inp,
                       scalars=(n, 16))


def test_constant_memory_match():
    rng = np.random.default_rng(7)
    n = 320
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    coeff = rng.standard_normal(16).astype(np.float32)
    assert_same_launch(CONST_SRC, (5,), (64,), out, inp, scalars=(n,),
                       const={"coeff": coeff})


@pytest.mark.parametrize("filter", ["point", "linear"])
def test_texture_match(filter):
    rng = np.random.default_rng(8)
    img = rng.standard_normal((16, 16)).astype(np.float32)
    n = 256
    xs = rng.uniform(-2, 18, n).astype(np.float32)
    ys = rng.uniform(-2, 18, n).astype(np.float32)
    results = {}
    for engine in ("serial", "batched"):
        mod = nvcc(TEX_SRC, arch="sm_20")
        gpu = GPU(TESLA_C2070)
        d_img = gpu.alloc_array(img)
        gpu.bind_texture(mod, "imgTex", d_img, width=16, height=16,
                         filter=filter)
        d_xs = gpu.alloc_array(xs)
        d_ys = gpu.alloc_array(ys)
        d_out = gpu.zeros(n, np.float32)
        res = gpu.launch(mod.kernel("k"), (4,), (64,),
                         [d_out, d_xs, d_ys, n], engine=engine)
        results[engine] = (gpu.memcpy_dtoh(d_out, np.float32, n), res)
    out_s, res_s = results["serial"]
    out_b, res_b = results["batched"]
    assert out_s.tobytes() == out_b.tobytes()
    for bs, bb in zip(res_s.stats, res_b.stats):
        assert bs.warps == bb.warps
    assert res_s.timing == res_b.timing


def test_sampled_launch_match():
    # functional=False: only sampled blocks run; both engines must pick
    # and execute the same blocks with the same stats.
    rng = np.random.default_rng(9)
    n = 64 * 64
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    results = assert_same_launch(DIVERGENT_SRC, (64,), (64,), out, inp,
                                 scalars=(n,), functional=False,
                                 sample_blocks=6)
    assert results["batched"][1].blocks_executed == 6


def test_cc13_half_warp_rules_match():
    # CC 1.3 coalescing/bank rules take per-half-warp paths.
    rng = np.random.default_rng(10)
    n = 6 * 64
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(BARRIER_SRC, (6,), (64,), out, inp, scalars=(n,),
                       arch="sm_13")


def test_2d_grid_and_block_match():
    rng = np.random.default_rng(11)
    src = """
    __global__ void k(float* out, const float* in, int w, int h) {
        int x = blockIdx.x * blockDim.x + threadIdx.x;
        int y = blockIdx.y * blockDim.y + threadIdx.y;
        if (x < w && y < h) {
            float v = in[y * w + x];
            if ((x + y) % 2 == 0) v *= 3.0f;
            out[y * w + x] = v + blockIdx.y;
        }
    }
    """
    w, h = 40, 24
    inp = rng.standard_normal(w * h).astype(np.float32)
    out = np.zeros(w * h, np.float32)
    assert_same_launch(src, (3, 3), (16, 8), out, inp, scalars=(w, h))


# -- CC 1.x coalescing stat parity -------------------------------------
#
# The batched engine computes CC 1.3 half-warp transactions with the
# vectorized rule in coalescing.global_transactions_batch; these launches
# pin its counts to the scalar oracle for every addressing regime the
# rule distinguishes, end to end through device stats.


GATHER_SRC = """
__global__ void k(float* out, const float* in, const int* map) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    out[gid] = in[map[gid]];
}
"""


def _regime_map(regime, blocks, rng):
    """Per-lane gather indices for each addressing regime, per block."""
    lanes = np.arange(32)
    rows = []
    for b in range(blocks):
        base = 32 * b
        if regime == "aligned":
            rows.append(base + lanes)
        elif regime == "permuted":
            rows.append(base + rng.permutation(32))
        elif regime == "misaligned":
            rows.append(base + lanes + 1)
        elif regime == "strided2":
            rows.append(base + lanes * 2)
        elif regime == "strided4":
            rows.append(base + lanes * 4)
        elif regime == "strided32":
            rows.append(lanes * 32 + b)
        elif regime == "scattered":
            rows.append(rng.integers(0, 1024, 32))
        else:
            raise AssertionError(regime)
    return np.concatenate(rows).astype(np.int32)


@pytest.mark.parametrize("regime", ["aligned", "permuted", "misaligned",
                                    "strided2", "strided4", "strided32",
                                    "scattered"])
@pytest.mark.parametrize("arch,spec", [("sm_13", TESLA_C1060),
                                       ("sm_20", TESLA_C2070)])
def test_coalescing_regime_stat_parity(regime, arch, spec):
    from repro.gpusim.coalescing import global_transactions

    blocks = 6
    rng = np.random.default_rng(hash((regime, arch)) % 2**32)
    gather = _regime_map(regime, blocks, rng)
    inp = rng.standard_normal(1024 + 32 * 32).astype(np.float32)
    out = np.zeros(blocks * 32, np.float32)
    mod = nvcc(GATHER_SRC, arch=arch)
    per_engine = {}
    for engine in ("serial", "batched"):
        gpu = GPU(spec)
        d_out = gpu.alloc_array(out)
        d_in = gpu.alloc_array(inp)
        d_map = gpu.alloc_array(gather)
        res = gpu.launch(mod.kernel("k"), (blocks,), (32,),
                         [d_out, d_in, d_map], engine=engine)
        per_engine[engine] = (gpu.memcpy_dtoh(d_out, np.float32,
                                              out.size), res, d_in,
                              d_out, d_map)
    out_s, res_s = per_engine["serial"][:2]
    out_b, res_b, d_in, d_out, d_map = per_engine["batched"]
    assert out_s.tobytes() == out_b.tobytes()
    mask = np.ones(32, bool)
    for b, (bs, bb) in enumerate(zip(res_s.stats, res_b.stats)):
        assert bs.warps == bb.warps
        # Expected: one warp per block; its transactions are the
        # oracle's counts for the map load, the gather, and the store.
        lane_gids = b * 32 + np.arange(32)
        expect = (global_transactions(d_map + 4 * lane_gids, mask, 4,
                                      spec)
                  + global_transactions(
                      d_in + 4 * gather[lane_gids].astype(np.int64),
                      mask, 4, spec)
                  + global_transactions(d_out + 4 * lane_gids, mask, 4,
                                        spec))
        assert bb.warps[0].mem_transactions == expect
    assert res_s.timing == res_b.timing


@pytest.mark.parametrize("ctype,npdtype", [("unsigned char", np.uint8),
                                           ("unsigned short", np.uint16)])
def test_cc13_small_itemsize_segments_match(ctype, npdtype):
    # 1- and 2-byte accesses shrink the CC 1.3 segment to 32/64 bytes.
    src = f"""
    __global__ void k({ctype}* out, const {ctype}* in, const int* map) {{
        int gid = blockIdx.x * blockDim.x + threadIdx.x;
        out[gid] = in[map[gid]];
    }}
    """
    rng = np.random.default_rng(21)
    blocks = 5
    gather = _regime_map("scattered", blocks, rng)
    inp = rng.integers(0, 200, 1024 + 32 * 32).astype(npdtype)
    out = np.zeros(blocks * 32, npdtype)
    assert_same_launch(src, (blocks,), (32,), out, inp, gather,
                       arch="sm_13")


@pytest.mark.parametrize("arch", ["sm_13", "sm_20"])
def test_partial_warp_coalescing_match(arch):
    # 48-thread blocks: the second warp's upper half-warp is inactive.
    rng = np.random.default_rng(22)
    blocks = 4
    n = blocks * 48
    gather = rng.integers(0, 512, n).astype(np.int32)
    src = """
    __global__ void k(float* out, const float* in, const int* map,
                      int n) {
        int gid = blockIdx.x * blockDim.x + threadIdx.x;
        if (gid < n) out[gid] = in[map[gid]];
    }
    """
    inp = rng.standard_normal(512).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(src, (blocks,), (48,), out, inp, gather,
                       scalars=(n,), arch=arch)


# -- ordered float atomics ---------------------------------------------
#
# Float atomicAdd is order-sensitive; the contract is that within one
# warp-instruction, member effects land in ascending block order (the
# serial order).  Single-warp blocks keep the per-block schedule
# identical in both engines, so results must be bit-exact.


SAME_ADDR_ATOMIC_SRC = """
__global__ void k(float* acc, const float* in) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    atomicAdd(&acc[0], in[gid]);
}
"""

PARTITIONED_ATOMIC_SRC = """
__global__ void k(float* acc, const float* in, int bins) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    atomicAdd(&acc[blockIdx.x % bins], in[gid]);
}
"""

CROSS_BLOCK_ATOMIC_SRC = """
__global__ void k(float* acc, const float* in, const int* bin) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    atomicAdd(&acc[bin[gid]], in[gid]);
}
"""

OLD_VALUE_ATOMIC_SRC = """
__global__ void k(float* out, float* acc, const float* in,
                  const int* bin) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    out[gid] = atomicAdd(&acc[bin[gid]], in[gid]);
}
"""


@pytest.mark.parametrize("arch", ["sm_13", "sm_20"])
def test_atomic_all_same_address_bit_exact(arch):
    rng = np.random.default_rng(30)
    blocks = 17
    vals = rng.standard_normal(blocks * 32).astype(np.float32)
    acc = np.zeros(1, np.float32)
    results = assert_same_launch(SAME_ADDR_ATOMIC_SRC, (blocks,), (32,),
                                 acc, vals, arch=arch)
    # Serial semantics: lanes retire in gid order, so the final value
    # is the exact sequential float32 fold — not a reassociated sum.
    expect = np.float32(0.0)
    for v in vals:
        expect = np.float32(expect + v)
    got = results["batched"][0][0][0]
    assert got.tobytes() == expect.tobytes()


@pytest.mark.parametrize("bins", [1, 3, 8])
def test_atomic_partitioned_bit_exact(bins):
    rng = np.random.default_rng(31)
    blocks = 13
    vals = rng.standard_normal(blocks * 32).astype(np.float32)
    acc = np.zeros(bins, np.float32)
    assert_same_launch(PARTITIONED_ATOMIC_SRC, (blocks,), (32,), acc,
                       vals, scalars=(bins,), arch="sm_13")


@pytest.mark.parametrize("arch", ["sm_13", "sm_20"])
@pytest.mark.parametrize("bins", [1, 4, 64])
def test_atomic_cross_block_bit_exact(arch, bins):
    rng = np.random.default_rng(32)
    blocks = 11
    n = blocks * 32
    vals = rng.standard_normal(n).astype(np.float32)
    bin_of = rng.integers(0, bins, n).astype(np.int32)
    acc = np.zeros(bins, np.float32)
    assert_same_launch(CROSS_BLOCK_ATOMIC_SRC, (blocks,), (32,), acc,
                       vals, bin_of, arch=arch)


@pytest.mark.parametrize("bins", [1, 4, 16])
def test_atomic_old_values_bit_exact(bins):
    # The returned pre-add snapshot encodes exactly where in the chain
    # each member's read happened; any ordering slip shows up here.
    rng = np.random.default_rng(33)
    blocks = 9
    n = blocks * 32
    vals = rng.standard_normal(n).astype(np.float32)
    bin_of = rng.integers(0, bins, n).astype(np.int32)
    acc = rng.standard_normal(bins).astype(np.float32)
    out = np.zeros(n, np.float32)
    results = {}
    for engine in ("serial", "batched"):
        h = KernelHarness(OLD_VALUE_ATOMIC_SRC)
        outs, res = h((blocks,), (32,), out.copy(), acc.copy(), vals,
                      bin_of, engine=engine)
        results[engine] = (outs, res)
    o_s, a_s = results["serial"][0][:2]
    o_b, a_b = results["batched"][0][:2]
    assert o_s.tobytes() == o_b.tobytes()
    assert a_s.tobytes() == a_b.tobytes()
    for bs, bb in zip(results["serial"][1].stats,
                      results["batched"][1].stats):
        assert bs.warps == bb.warps


def test_atomic_global_stalls_counted_equally():
    rng = np.random.default_rng(34)
    blocks = 8
    n = blocks * 32
    vals = rng.standard_normal(n).astype(np.float32)
    bin_of = rng.integers(0, 2, n).astype(np.int32)
    acc = np.zeros(2, np.float32)
    results = assert_same_launch(CROSS_BLOCK_ATOMIC_SRC, (blocks,),
                                 (32,), acc, vals, bin_of, arch="sm_13")
    stalls = [w.global_stalls
              for s in results["batched"][1].stats for w in s.warps]
    assert sum(stalls) > 0  # contended adds must register stalls


# -- gang-prototype cache ----------------------------------------------


def test_gang_proto_cached_across_launches():
    clear_plan_cache()
    h = KernelHarness(DIVERGENT_SRC)
    n = 256
    inp = np.ones(n, np.float32)
    out = np.zeros(n, np.float32)
    before = gang_cache_stats()
    for _ in range(3):
        h((4,), (64,), out, inp, n, engine="batched")
    delta = {k: gang_cache_stats()[k] - before[k] for k in before}
    assert delta == {"misses": 1, "hits": 2}
    # A different launch shape builds (and caches) its own prototype.
    h((2,), (128,), np.zeros(n, np.float32), inp, n, engine="batched")
    delta = {k: gang_cache_stats()[k] - before[k] for k in before}
    assert delta == {"misses": 2, "hits": 2}
    clear_plan_cache()


# -- plan cache --------------------------------------------------------


def test_plan_cache_hits_and_eviction():
    clear_plan_cache()
    mod = nvcc(DIVERGENT_SRC, arch="sm_20")
    ir = mod.kernel("k").ir
    p1 = plan_for(ir, TESLA_C2070)
    p2 = plan_for(ir, TESLA_C2070)
    assert p1 is p2
    assert plan_for(ir, TESLA_C1060) is not p1  # per-device plans
    stats = plan_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert stats["size"] == 2
    del p1, p2, ir, mod
    gc.collect()
    assert plan_cache_stats()["size"] == 0  # weakly held
    clear_plan_cache()


def test_launch_reuses_plan():
    clear_plan_cache()
    h = KernelHarness(DIVERGENT_SRC)
    n = 128
    inp = np.ones(n, np.float32)
    out = np.zeros(n, np.float32)
    for _ in range(3):
        h((2,), (64,), out, inp, n)
    stats = plan_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 2
    clear_plan_cache()


# -- tuning: parallel sweeps and deterministic optima ------------------


def _sweep_run(config):
    h = KernelHarness(DIVERGENT_SRC)
    n = 64 * config["blocks"]
    inp = np.linspace(-1, 1, n).astype(np.float32)
    out = np.zeros(n, np.float32)
    _, res = h((config["blocks"],), (64,), out, inp, n)
    return SweepRecord(config=config, seconds=res.seconds)


def test_sweeper_jobs_deterministic():
    configs = [{"blocks": b} for b in (1, 2, 3, 4, 5, 6)]
    serial_records = Sweeper(_sweep_run).sweep(configs)
    for _ in range(2):
        records = Sweeper(_sweep_run, jobs=2).sweep(configs)
        assert [r.config for r in records] == \
            [r.config for r in serial_records]
        assert [r.seconds for r in records] == \
            [r.seconds for r in serial_records]


def test_sweeper_cache_report_attributes_reuse():
    from repro.runtime.context import using_context

    def run(config):
        n = 64 * 4
        inp = np.linspace(-1, 1, n).astype(np.float32)
        out = np.zeros(n, np.float32)
        _, res = h((4,), (64,), out, inp, n, engine="batched")
        return SweepRecord(config=config, seconds=res.seconds)

    sweeper = Sweeper(run)
    # The harness captures the ambient context at construction; build
    # it under the sweep's context so its launches are charged there.
    with using_context(sweeper.ctx):
        h = KernelHarness(DIVERGENT_SRC)
    sweeper.sweep([{"i": i} for i in range(4)])
    report = sweeper.cache_report
    # One compile/shape, four launches: everything after the first is
    # a cache hit in both the plan and gang-prototype caches.  The
    # context is private to this sweep, so the counts are exact even
    # with other tests (or sweeps) running in the same process.
    assert report["plan_misses"] == 1 and report["plan_hits"] == 3
    assert report["gang_misses"] == 1 and report["gang_hits"] == 3


def test_sweeper_jobs_captures_failures():
    def run(config):
        if config["n"] == 2:
            raise RuntimeError("boom")
        return SweepRecord(config=config, seconds=float(config["n"]))

    records = Sweeper(run, jobs=3).sweep([{"n": i} for i in range(4)])
    assert [r.valid for r in records] == [True, True, False, True]
    assert "boom" in records[2].error


def test_best_record_tie_break_deterministic():
    records = [SweepRecord(config={"x": x}, seconds=1.0)
               for x in (3, 1, 2)]
    assert best_record(records).config == {"x": 1}
    assert best_record(list(reversed(records))).config == {"x": 1}


# -- disk cache format guard -------------------------------------------


def test_disk_cache_version_guard(tmp_path):
    cache = KernelCache(disk_dir=str(tmp_path))
    mod = cache.compile(DIVERGENT_SRC)
    assert cache.misses == 1
    entries = list(tmp_path.glob("*.mod"))
    assert len(entries) == 1
    with open(entries[0], "rb") as fh:
        version, payload = pickle.load(fh)
    assert isinstance(version, int)

    # A fresh cache loads the entry from disk without recompiling.
    cache2 = KernelCache(disk_dir=str(tmp_path))
    cache2.compile(DIVERGENT_SRC)
    assert cache2.hits == 1 and cache2.misses == 0

    # A stale-format entry (legacy layout: bare module pickle) is
    # ignored and recompiled in place.
    with open(entries[0], "wb") as fh:
        pickle.dump(payload, fh)
    cache3 = KernelCache(disk_dir=str(tmp_path))
    cache3.compile(DIVERGENT_SRC)
    assert cache3.misses == 1
    with open(entries[0], "rb") as fh:
        version2, _ = pickle.load(fh)
    assert version2 == version  # rewritten in the current format

"""Batched engine ≡ serial oracle, plan cache, and parallel sweeps.

The batched engine's contract is bit-exactness: for any launch, device
memory, every per-warp counter, and the derived Timing must equal the
serial path's.  These tests drive both engines over kernels chosen to
hit each mechanism that could break lockstep execution: intra-warp
divergence, block-dependent control flow (gang splits), barriers,
shared/constant/texture/local memory, atomics, and sampled launches.
"""

import gc
import pickle

import numpy as np
import pytest

from tests.helpers import KernelHarness
from repro.gpupf.cache import KernelCache
from repro.gpusim import (GPU, TESLA_C1060, TESLA_C2070,
                          clear_plan_cache, plan_cache_stats, plan_for)
from repro.kernelc import nvcc
from repro.tuning.sweep import SweepRecord, Sweeper, best_record


def assert_same_launch(src, grid, block, *arrays, scalars=(),
                       arch="sm_20", functional=True, sample_blocks=8,
                       const=None, defines=None):
    """Run serial and batched with identical inputs; demand equality."""
    results = {}
    for engine in ("serial", "batched"):
        h = KernelHarness(src, arch=arch, defines=defines)
        args = [a.copy() for a in arrays] + list(scalars)
        outputs, res = h(grid, block, *args, functional=functional,
                         sample_blocks=sample_blocks, const=const,
                         engine=engine)
        results[engine] = (outputs, res)
    (out_s, res_s), (out_b, res_b) = results["serial"], results["batched"]
    for a, b in zip(out_s, out_b):
        assert a.tobytes() == b.tobytes()
    assert res_s.blocks_executed == res_b.blocks_executed
    assert len(res_s.stats) == len(res_b.stats)
    for bs, bb in zip(res_s.stats, res_b.stats):
        assert bs.warps == bb.warps
    assert res_s.timing == res_b.timing
    return results


DIVERGENT_SRC = """
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = in[gid];
    float acc = 0.0f;
    for (int i = 0; i < gid % 11; ++i)   // data-dependent trip count
        acc += v * i;
    if (gid % 3 == 0) acc = -acc;        // divergent branch
    else if (gid % 3 == 1) acc += 1.0f;
    out[gid] = acc;
}
"""

BARRIER_SRC = """
__global__ void k(float* out, const float* in, int n) {
    __shared__ float buf[64];
    int tid = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + tid;
    buf[tid] = (gid < n) ? in[gid] : 0.0f;
    __syncthreads();
    float acc = 0.0f;
    for (int i = 0; i <= tid % 5; ++i)
        acc += buf[(tid + i) % blockDim.x];
    __syncthreads();
    buf[tid] = acc;
    __syncthreads();
    if (gid < n) out[gid] = buf[blockDim.x - 1 - tid];
}
"""

BLOCK_DIVERGENT_SRC = """
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = in[gid];
    // Uniform within a block, different across blocks: forces the
    // gang to split into per-branch fragments.
    if (blockIdx.x % 3 == 0) {
        for (int i = 0; i < (int)blockIdx.x % 7; ++i)
            v += 0.5f;                   // per-block trip counts
    } else if (blockIdx.x % 3 == 1) {
        v *= 2.0f;
    } else {
        v = -v;
    }
    out[gid] = v;
}
"""

EXIT_SRC = """
__global__ void k(int* out, const int* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    int v = in[gid];
    if (v < 0) { out[gid] = -1; return; }  // exit under divergence
    int acc = 0;
    for (int i = 0; i < v % 6; ++i) acc += i * v;
    out[gid] = acc;
}
"""

ATOMIC_SRC = """
__global__ void k(int* hist, const int* in, int n, int bins) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) atomicAdd(&hist[in[gid] % bins], 1);
}
"""

CONST_SRC = """
__constant__ float coeff[16];
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) out[gid] = in[gid] * coeff[gid % 16] + coeff[0];
}
"""

TEX_SRC = """
texture<float, 2> imgTex;
__global__ void k(float* out, const float* xs, const float* ys, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) out[gid] = tex2D(imgTex, xs[gid], ys[gid]);
}
"""


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_divergent_branches_match(seed):
    rng = np.random.default_rng(seed)
    n = 500
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(DIVERGENT_SRC, (7,), (96,), out, inp,
                       scalars=(n,))


@pytest.mark.parametrize("block", [(64,), (48,)])
def test_barrier_and_shared_match(block):
    # 48 threads: multi-warp block with a partial second warp.
    rng = np.random.default_rng(3)
    n = 6 * block[0]
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(BARRIER_SRC, (6,), block, out, inp, scalars=(n,))


def test_block_divergent_control_flow_match():
    # Every block takes its own path: the gang must split and still
    # reproduce serial stats per block.
    rng = np.random.default_rng(4)
    n = 9 * 64
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(BLOCK_DIVERGENT_SRC, (9,), (64,), out, inp,
                       scalars=(n,))


def test_exit_under_divergence_match():
    rng = np.random.default_rng(5)
    n = 300
    inp = rng.integers(-10, 10, n).astype(np.int32)
    out = np.zeros(n, np.int32)
    assert_same_launch(EXIT_SRC, (5,), (64,), out, inp, scalars=(n,))


def test_global_atomics_match():
    rng = np.random.default_rng(6)
    n = 400
    inp = rng.integers(0, 1000, n).astype(np.int32)
    hist = np.zeros(16, np.int32)
    assert_same_launch(ATOMIC_SRC, (4,), (128,), hist, inp,
                       scalars=(n, 16))


def test_constant_memory_match():
    rng = np.random.default_rng(7)
    n = 320
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    coeff = rng.standard_normal(16).astype(np.float32)
    assert_same_launch(CONST_SRC, (5,), (64,), out, inp, scalars=(n,),
                       const={"coeff": coeff})


@pytest.mark.parametrize("filter", ["point", "linear"])
def test_texture_match(filter):
    rng = np.random.default_rng(8)
    img = rng.standard_normal((16, 16)).astype(np.float32)
    n = 256
    xs = rng.uniform(-2, 18, n).astype(np.float32)
    ys = rng.uniform(-2, 18, n).astype(np.float32)
    results = {}
    for engine in ("serial", "batched"):
        mod = nvcc(TEX_SRC, arch="sm_20")
        gpu = GPU(TESLA_C2070)
        d_img = gpu.alloc_array(img)
        gpu.bind_texture(mod, "imgTex", d_img, width=16, height=16,
                         filter=filter)
        d_xs = gpu.alloc_array(xs)
        d_ys = gpu.alloc_array(ys)
        d_out = gpu.zeros(n, np.float32)
        res = gpu.launch(mod.kernel("k"), (4,), (64,),
                         [d_out, d_xs, d_ys, n], engine=engine)
        results[engine] = (gpu.memcpy_dtoh(d_out, np.float32, n), res)
    out_s, res_s = results["serial"]
    out_b, res_b = results["batched"]
    assert out_s.tobytes() == out_b.tobytes()
    for bs, bb in zip(res_s.stats, res_b.stats):
        assert bs.warps == bb.warps
    assert res_s.timing == res_b.timing


def test_sampled_launch_match():
    # functional=False: only sampled blocks run; both engines must pick
    # and execute the same blocks with the same stats.
    rng = np.random.default_rng(9)
    n = 64 * 64
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    results = assert_same_launch(DIVERGENT_SRC, (64,), (64,), out, inp,
                                 scalars=(n,), functional=False,
                                 sample_blocks=6)
    assert results["batched"][1].blocks_executed == 6


def test_cc13_half_warp_rules_match():
    # CC 1.3 coalescing/bank rules take per-half-warp paths.
    rng = np.random.default_rng(10)
    n = 6 * 64
    inp = rng.standard_normal(n).astype(np.float32)
    out = np.zeros(n, np.float32)
    assert_same_launch(BARRIER_SRC, (6,), (64,), out, inp, scalars=(n,),
                       arch="sm_13")


def test_2d_grid_and_block_match():
    rng = np.random.default_rng(11)
    src = """
    __global__ void k(float* out, const float* in, int w, int h) {
        int x = blockIdx.x * blockDim.x + threadIdx.x;
        int y = blockIdx.y * blockDim.y + threadIdx.y;
        if (x < w && y < h) {
            float v = in[y * w + x];
            if ((x + y) % 2 == 0) v *= 3.0f;
            out[y * w + x] = v + blockIdx.y;
        }
    }
    """
    w, h = 40, 24
    inp = rng.standard_normal(w * h).astype(np.float32)
    out = np.zeros(w * h, np.float32)
    assert_same_launch(src, (3, 3), (16, 8), out, inp, scalars=(w, h))


# -- plan cache --------------------------------------------------------


def test_plan_cache_hits_and_eviction():
    clear_plan_cache()
    mod = nvcc(DIVERGENT_SRC, arch="sm_20")
    ir = mod.kernel("k").ir
    p1 = plan_for(ir, TESLA_C2070)
    p2 = plan_for(ir, TESLA_C2070)
    assert p1 is p2
    assert plan_for(ir, TESLA_C1060) is not p1  # per-device plans
    stats = plan_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert stats["size"] == 2
    del p1, p2, ir, mod
    gc.collect()
    assert plan_cache_stats()["size"] == 0  # weakly held
    clear_plan_cache()


def test_launch_reuses_plan():
    clear_plan_cache()
    h = KernelHarness(DIVERGENT_SRC)
    n = 128
    inp = np.ones(n, np.float32)
    out = np.zeros(n, np.float32)
    for _ in range(3):
        h((2,), (64,), out, inp, n)
    stats = plan_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 2
    clear_plan_cache()


# -- tuning: parallel sweeps and deterministic optima ------------------


def _sweep_run(config):
    h = KernelHarness(DIVERGENT_SRC)
    n = 64 * config["blocks"]
    inp = np.linspace(-1, 1, n).astype(np.float32)
    out = np.zeros(n, np.float32)
    _, res = h((config["blocks"],), (64,), out, inp, n)
    return SweepRecord(config=config, seconds=res.seconds)


def test_sweeper_jobs_deterministic():
    configs = [{"blocks": b} for b in (1, 2, 3, 4, 5, 6)]
    serial_records = Sweeper(_sweep_run).sweep(configs)
    for _ in range(2):
        records = Sweeper(_sweep_run, jobs=2).sweep(configs)
        assert [r.config for r in records] == \
            [r.config for r in serial_records]
        assert [r.seconds for r in records] == \
            [r.seconds for r in serial_records]


def test_sweeper_jobs_captures_failures():
    def run(config):
        if config["n"] == 2:
            raise RuntimeError("boom")
        return SweepRecord(config=config, seconds=float(config["n"]))

    records = Sweeper(run, jobs=3).sweep([{"n": i} for i in range(4)])
    assert [r.valid for r in records] == [True, True, False, True]
    assert "boom" in records[2].error


def test_best_record_tie_break_deterministic():
    records = [SweepRecord(config={"x": x}, seconds=1.0)
               for x in (3, 1, 2)]
    assert best_record(records).config == {"x": 1}
    assert best_record(list(reversed(records))).config == {"x": 1}


# -- disk cache format guard -------------------------------------------


def test_disk_cache_version_guard(tmp_path):
    cache = KernelCache(disk_dir=str(tmp_path))
    mod = cache.compile(DIVERGENT_SRC)
    assert cache.misses == 1
    entries = list(tmp_path.glob("*.mod"))
    assert len(entries) == 1
    with open(entries[0], "rb") as fh:
        version, payload = pickle.load(fh)
    assert isinstance(version, int)

    # A fresh cache loads the entry from disk without recompiling.
    cache2 = KernelCache(disk_dir=str(tmp_path))
    cache2.compile(DIVERGENT_SRC)
    assert cache2.hits == 1 and cache2.misses == 0

    # A stale-format entry (legacy layout: bare module pickle) is
    # ignored and recompiled in place.
    with open(entries[0], "wb") as fh:
        pickle.dump(payload, fh)
    cache3 = KernelCache(disk_dir=str(tmp_path))
    cache3.compile(DIVERGENT_SRC)
    assert cache3.misses == 1
    with open(entries[0], "rb") as fh:
        version2, _ = pickle.load(fh)
    assert version2 == version  # rewritten in the current format

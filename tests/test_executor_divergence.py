"""SIMT divergence semantics: masked execution and IPDOM reconvergence."""

import numpy as np
import pytest

from repro.gpusim.executor import SimError
from tests.helpers import run_kernel

rng = np.random.default_rng(7)


class TestDivergence:
    def test_if_else_divergent(self):
        src = """
        __global__ void div(const int* x, int* out, int n) {
            int i = threadIdx.x;
            if (i < n) {
                if (x[i] % 2 == 0) out[i] = x[i] * 10;
                else out[i] = -x[i];
            }
        }
        """
        x = rng.integers(0, 100, 64, dtype=np.int32)
        out = np.zeros(64, np.int32)
        (_, out_), res = run_kernel(src, 1, 64, x, out, 64)
        np.testing.assert_array_equal(out_, np.where(x % 2 == 0,
                                                     x * 10, -x))
        assert sum(w.divergent_branches for s in res.stats
                   for w in s.warps) > 0

    def test_nested_divergence(self):
        src = """
        __global__ void nest(const int* x, int* out, int n) {
            int i = threadIdx.x;
            if (i >= n) return;
            if (x[i] > 50) {
                if (x[i] > 75) out[i] = 3;
                else out[i] = 2;
            } else {
                if (x[i] > 25) out[i] = 1;
                else out[i] = 0;
            }
        }
        """
        x = rng.integers(0, 101, 96, dtype=np.int32)
        out = np.full(96, -1, np.int32)
        (_, out_), _ = run_kernel(src, 1, 96, x, out, 96)
        expected = np.select([x > 75, x > 50, x > 25],
                             [3, 2, 1], default=0)
        np.testing.assert_array_equal(out_, expected)

    def test_divergent_loop_trip_counts(self):
        """Each lane loops a different number of times."""
        src = """
        __global__ void dl(const int* n, int* out) {
            int i = threadIdx.x;
            int acc = 0;
            for (int j = 0; j < n[i]; j++) acc += j;
            out[i] = acc;
        }
        """
        n = rng.integers(0, 20, 32, dtype=np.int32)
        out = np.zeros(32, np.int32)
        (_, out_), _ = run_kernel(src, 1, 32, n, out)
        expected = np.array([sum(range(k)) for k in n], dtype=np.int32)
        np.testing.assert_array_equal(out_, expected)

    def test_early_return_divergent(self):
        """return inside divergent control flow terminates lanes only."""
        src = """
        __global__ void er(const int* x, int* out, int n) {
            int i = threadIdx.x;
            if (i >= n) return;
            if (x[i] < 0) { out[i] = -1; return; }
            out[i] = x[i] * 2;
        }
        """
        x = rng.integers(-10, 10, 48, dtype=np.int32)
        out = np.full(48, 99, np.int32)
        (_, out_), _ = run_kernel(src, 1, 64, x, out, 48)
        np.testing.assert_array_equal(out_[:48],
                                      np.where(x < 0, -1, x * 2))
        np.testing.assert_array_equal(out_[48:], 99)

    def test_divergent_break(self):
        src = """
        __global__ void db(const int* limit, int* out) {
            int i = threadIdx.x;
            int acc = 0;
            for (int j = 0; j < 100; j++) {
                if (j >= limit[i]) break;
                acc++;
            }
            out[i] = acc;
        }
        """
        limit = rng.integers(0, 50, 32, dtype=np.int32)
        out = np.zeros(32, np.int32)
        (_, out_), _ = run_kernel(src, 1, 32, limit, out)
        np.testing.assert_array_equal(out_, limit)

    def test_divergent_continue(self):
        src = """
        __global__ void dc(int* out) {
            int i = threadIdx.x;
            int acc = 0;
            for (int j = 0; j < 10; j++) {
                if (j % (i + 1) != 0) continue;
                acc++;
            }
            out[i] = acc;
        }
        """
        out = np.zeros(8, np.int32)
        (out_,), _ = run_kernel(src, 1, 8, out)
        expected = [len([j for j in range(10) if j % (i + 1) == 0])
                    for i in range(8)]
        np.testing.assert_array_equal(out_, expected)

    def test_logical_operators_no_branch(self):
        src = """
        __global__ void lg(const int* x, int* out, int n) {
            int i = threadIdx.x;
            if (i < n && x[i] > 2 || i == 0) out[i] = 1;
        }
        """
        x = np.array([0, 5, 1, 7], dtype=np.int32)
        out = np.zeros(4, np.int32)
        (_, out_), _ = run_kernel(src, 1, 4, x, out, 4)
        np.testing.assert_array_equal(out_, [1, 1, 0, 1])


class TestBarriers:
    def test_barrier_in_divergent_code_rejected(self):
        src = """
        __global__ void bad(int* out) {
            if (threadIdx.x < 16) __syncthreads();
            out[threadIdx.x] = 1;
        }
        """
        with pytest.raises(SimError, match="divergent"):
            run_kernel(src, 1, 32, np.zeros(32, np.int32))

    def test_barrier_sequences_warps(self):
        """Warp 1 must see warp 0's pre-barrier shared writes."""
        src = """
        __global__ void xchg(int* out) {
            __shared__ int buf[64];
            int t = threadIdx.x;
            buf[t] = t * 2;
            __syncthreads();
            out[t] = buf[63 - t];
        }
        """
        out = np.zeros(64, np.int32)
        (out_,), _ = run_kernel(src, 1, 64, out)
        np.testing.assert_array_equal(out_, (63 - np.arange(64)) * 2)

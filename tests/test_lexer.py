"""Unit tests for the tokenizer."""

import pytest

from repro.kernelc.lexer import (LexError, Token, TokenStream, decode_float,
                                 decode_int, tokenize)


class TestTokenize:
    def test_identifiers_and_keywords(self):
        toks = tokenize("int foo = bar;")
        kinds = [(t.kind, t.text) for t in toks]
        assert kinds == [("kw", "int"), ("id", "foo"), ("punct", "="),
                         ("id", "bar"), ("punct", ";")]

    def test_cuda_keywords(self):
        toks = tokenize("__global__ void k() {}")
        assert toks[0].kind == "kw"
        assert toks[0].text == "__global__"

    def test_integer_literals(self):
        toks = tokenize("0x10 42 7u 1ull")
        assert [t.kind for t in toks] == ["int"] * 4

    def test_float_literals(self):
        toks = tokenize("1.0f 2.5 .5f 1e3 3.0e-2f")
        assert [t.kind for t in toks] == ["float"] * 5

    def test_integer_vs_float_disambiguation(self):
        toks = tokenize("a[1].x")  # '1].x' must not lex '1.' as float
        texts = [t.text for t in toks]
        assert "1" in texts and "." in texts

    def test_maximal_munch_operators(self):
        toks = tokenize("a<<=b>>c<=d")
        ops = [t.text for t in toks if t.kind == "punct"]
        assert ops == ["<<=", ">>", "<="]

    def test_line_comment_stripped(self):
        toks = tokenize("a // comment\nb")
        assert [t.text for t in toks] == ["a", "b"]

    def test_block_comment_stripped(self):
        toks = tokenize("a /* multi\nline */ b")
        assert [t.text for t in toks] == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks] == [1, 2, 4]

    def test_line_numbers_across_block_comment(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].text == "x"

    def test_line_continuation_spliced(self):
        toks = tokenize("foo\\\nbar")
        assert toks[0].text == "foobar"

    def test_keep_newlines(self):
        toks = tokenize("a\nb", keep_newlines=True)
        assert [t.kind for t in toks] == ["id", "newline", "id"]

    def test_bad_character_raises(self):
        with pytest.raises(LexError):
            tokenize("int a = @;")

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind == "string"

    def test_char_literal(self):
        toks = tokenize("'x'")
        assert toks[0].kind == "char"


class TestDecode:
    def test_decode_plain_int(self):
        assert decode_int("42") == (42, False, False)

    def test_decode_hex(self):
        assert decode_int("0xFF")[0] == 255

    def test_decode_unsigned(self):
        assert decode_int("7u") == (7, True, False)

    def test_decode_ull(self):
        assert decode_int("1ull") == (1, True, True)

    def test_decode_float_suffix(self):
        value, is_double = decode_float("1.5f")
        assert value == 1.5 and not is_double

    def test_decode_double_default(self):
        assert decode_float("1.5") == (1.5, True)

    def test_decode_exponent(self):
        assert decode_float("1e3")[0] == 1000.0


class TestTokenStream:
    def test_peek_and_next(self):
        ts = TokenStream(tokenize("a b"))
        assert ts.peek().text == "a"
        assert ts.next().text == "a"
        assert ts.next().text == "b"
        assert ts.peek().kind == "eof"

    def test_accept(self):
        ts = TokenStream(tokenize("a b"))
        assert ts.accept("id", "a")
        assert not ts.accept("id", "zzz")
        assert ts.accept("id")

    def test_expect_failure(self):
        ts = TokenStream(tokenize("a"))
        with pytest.raises(LexError):
            ts.expect("punct", ";")

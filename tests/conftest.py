"""Shared test fixtures and environment setup.

Process-pool sweeps with ``start_method="spawn"`` launch cold
interpreters that re-import :mod:`repro` from scratch; since the
package is run from the source tree (not installed), the spawned
children need ``src`` on ``PYTHONPATH``.  Normal forked workers and
in-process tests inherit ``sys.path`` and don't care.
"""

import os
import sys

_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_parts = os.environ.get("PYTHONPATH", "")
if _SRC not in _parts.split(os.pathsep):
    os.environ["PYTHONPATH"] = (f"{_SRC}{os.pathsep}{_parts}"
                                if _parts else _SRC)

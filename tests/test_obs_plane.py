"""The fleet-wide telemetry plane, end to end.

Covers the four tentpole pieces of the observability PR:

* :mod:`repro.obs.hist` — log-bucketed latency histograms whose
  quantile estimates stay within one bucket of the exact order
  statistic (asserted against :func:`numpy.percentile`);
* :mod:`repro.obs.events` — the bounded, seeded-deterministic flight
  recorder, its closed event schema, and the ``repro.obs.tail`` CLI;
* :mod:`repro.obs.prom` — Prometheus text exposition of any metrics
  snapshot, plus the checker CI runs over it;
* cross-process span propagation — a traced serve request ships its
  worker span tree back and the supervisor grafts it under a
  ``request:{id}`` span (the TCP variant lives in ``test_serve.py``).
"""

import json
import sys

import numpy as np
import pytest

from repro.apps.harness import ProblemSpec, RunRequest
from repro.apps.piv import PIVConfig, PIVProblem
from repro.obs import report as report_cli
from repro.obs import tail as tail_cli
from repro.obs.events import EVENT_KINDS, FlightRecorder, validate_events
from repro.obs.export import validate_chrome
from repro.obs.hist import (GROWTH, LatencyHistogram, bucket_bounds,
                            bucket_index)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import prom_exposition, validate_prom
from repro.obs.trace import TraceContext
from repro.runtime import DeviceFleet
from repro.runtime.context import ExecutionContext
from repro.serve import ServiceConfig, SpecializationService

PIV_SPEC = ProblemSpec(
    app="piv", problem=PIVProblem("plane", 40, 40, mask=8, offs=3),
    seed=3, device="c2070", memory_bytes=8 << 20)


def piv_request(**kw):
    return RunRequest(spec=PIV_SPEC,
                      config=PIVConfig(rb=2, threads=32,
                                       functional=True), **kw)


def fast_config(**kw):
    kw.setdefault("workers", 1)
    kw.setdefault("queue_capacity", 8)
    kw.setdefault("tick", 0.02)
    kw.setdefault("heartbeat_interval", 0.05)
    kw.setdefault("hang_timeout", 2.0)
    return ServiceConfig(**kw)


# ---------------------------------------------------------------------
# Log-bucketed histograms: the quantile error bound is the contract.
# ---------------------------------------------------------------------

class TestLatencyHistogram:
    def test_bucket_geometry(self):
        lo, hi = bucket_bounds(bucket_index(0.5))
        assert lo <= 0.5 < hi
        assert hi / lo == pytest.approx(GROWTH)
        # the clamp: zero and negatives land in the bottom bucket
        assert bucket_index(0.0) == bucket_index(-1.0) \
            == bucket_index(1e-15)

    @pytest.mark.parametrize("dist", ["lognormal", "uniform", "bimodal"])
    def test_quantiles_within_one_bucket_of_exact(self, dist):
        rng = np.random.default_rng(42)
        if dist == "lognormal":
            samples = rng.lognormal(mean=-3.0, sigma=1.2, size=5000)
        elif dist == "uniform":
            samples = rng.uniform(1e-4, 2.0, size=5000)
        else:
            samples = np.concatenate([
                rng.normal(0.01, 0.001, size=2500),
                rng.normal(1.0, 0.05, size=2500)]).clip(min=1e-6)
        h = LatencyHistogram()
        for v in samples:
            h.record(float(v))
        for q in (0.5, 0.9, 0.95, 0.99):
            estimate = h.quantile(q)
            # the bound is against the order statistic itself, not a
            # linearly interpolated percentile (which can land between
            # two widely separated samples in the bimodal case)
            exact = float(np.percentile(samples, q * 100,
                                        method="lower"))
            # Estimate and exact order statistic share a bucket, so
            # the ratio is bounded by one bucket width (factor GROWTH).
            assert exact / GROWTH <= estimate <= exact * GROWTH, \
                f"q={q}: estimate {estimate} vs exact {exact}"

    def test_quantile_edge_cases(self):
        h = LatencyHistogram()
        assert h.quantile(0.5) is None          # empty
        h.record(0.25)
        assert h.quantile(0.5) == 0.25          # clamped into [min,max]
        assert h.quantile(1.0) == 0.25
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_dict_shape(self):
        h = LatencyHistogram()
        assert h.quantiles() == {}
        for v in (0.1, 0.2, 0.3):
            h.record(v)
        qs = h.quantiles()
        assert set(qs) == {"p50", "p95", "p99"}
        assert qs["p50"] <= qs["p95"] <= qs["p99"]

    def test_merge_adds_bucket_counts(self):
        rng = np.random.default_rng(7)
        a, b, both = (LatencyHistogram() for _ in range(3))
        for v in rng.uniform(0.001, 1.0, size=400):
            a.record(float(v))
            both.record(float(v))
        for v in rng.lognormal(-2, 1, size=400):
            b.record(float(v))
            both.record(float(v))
        a.merge(b)
        assert a.count == both.count == 800
        assert a.buckets == both.buckets
        assert a.sum == pytest.approx(both.sum)
        assert a.quantile(0.95) == both.quantile(0.95)

    def test_from_parts_round_trips_through_json(self):
        h = LatencyHistogram()
        for v in (0.01, 0.02, 0.5, 0.5, 3.0):
            h.record(v)
        blob = json.dumps({"summary": h.summary(),
                           "buckets": h.buckets})
        parts = json.loads(blob)  # bucket keys become strings
        back = LatencyHistogram.from_parts(parts["summary"],
                                           parts["buckets"])
        assert back.count == h.count
        assert back.buckets == h.buckets
        assert back.quantile(0.5) == h.quantile(0.5)

    def test_summary_without_buckets_quantile_none(self):
        h = LatencyHistogram.from_parts(
            {"count": 10, "sum": 1.0, "min": 0.05, "max": 0.2})
        assert h.count == 10
        assert h.quantile(0.5) is None  # no bucket detail shipped


# ---------------------------------------------------------------------
# Registry: SLO breach counters, snapshot buckets, bucket-aware merge.
# ---------------------------------------------------------------------

class TestRegistrySLO:
    def test_breaches_counted_above_threshold(self):
        reg = MetricsRegistry()
        reg.set_slo("lat_s", 0.5)
        for v in (0.1, 0.6, 0.4, 2.0, 0.5):  # exactly-at is not a breach
            reg.observe("lat_s", v)
        assert reg.counter("slo.breach.lat_s") == 2
        assert reg.slos() == {"lat_s": 0.5}

    def test_snapshot_carries_buckets_section(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("lat_s", 0.25)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms",
                             "buckets"}
        # the histogram summary keeps its historical shape
        assert set(snap["histograms"]["lat_s"]) \
            == {"count", "sum", "mean", "min", "max"}
        assert snap["buckets"]["lat_s"] == {bucket_index(0.25): 1}

    def test_merge_combines_bucket_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.1, 0.2, 0.4):
            a.observe("lat_s", v)
            b.observe("lat_s", v)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["histograms"]["lat_s"]["count"] == 6
        assert all(n == 2 for n in snap["buckets"]["lat_s"].values())
        assert a.quantile("lat_s", 0.5) is not None

    def test_quantiles_for_unknown_histogram(self):
        reg = MetricsRegistry()
        assert reg.quantile("nope", 0.5) is None
        assert reg.quantiles("nope") == {}


# ---------------------------------------------------------------------
# Flight recorder: bounded, deterministic, schema-validated.
# ---------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_rotation_and_drop_count(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("note", text=f"n{i}")
        assert len(rec) == 3
        assert rec.dropped == 2
        assert rec.last_seq == 5
        assert [e["attrs"]["text"] for e in rec.events()] \
            == ["n2", "n3", "n4"]

    def test_ids_are_seed_deterministic(self):
        a = FlightRecorder(seed=11)
        b = FlightRecorder(seed=11)
        c = FlightRecorder(seed=12)
        for rec in (a, b, c):
            rec.record("note", text="x")
            rec.record("worker.spawn", worker="w0g1")
        ids = lambda r: [e["id"] for e in r.events()]  # noqa: E731
        assert ids(a) == ids(b)
        assert ids(a) != ids(c)

    def test_unknown_kind_raises(self):
        rec = FlightRecorder()
        with pytest.raises(ValueError, match="unknown event kind"):
            rec.record("made.up", foo=1)

    def test_since_returns_the_delta(self):
        rec = FlightRecorder()
        rec.record("note", text="before")
        mark = rec.last_seq
        rec.record("note", text="after")
        delta = rec.since(mark)
        assert [e["attrs"]["text"] for e in delta] == ["after"]

    def test_extend_resequences_and_reoriginates(self):
        worker = FlightRecorder(origin="worker")
        worker.record("trace.deopt", kernel="k", deopts=1)
        shipped = worker.since(0)
        sup = FlightRecorder(origin="supervisor")
        sup.record("worker.spawn", worker="w0g1")
        assert sup.extend(shipped, origin="w0g1") == 1
        events = sup.events()
        assert [e["seq"] for e in events] == [1, 2]
        assert events[1]["kind"] == "trace.deopt"
        assert events[1]["origin"] == "w0g1"
        assert not validate_events(events)

    def test_validate_events_catches_schema_violations(self):
        ok = FlightRecorder()
        ok.record("worker.kill", worker="w0g1", why="hang")
        events = ok.events()
        assert validate_events(events) == []
        bad_attr = [dict(events[0], attrs={"worker": "w0g1"})]
        assert any("missing attr 'why'" in p
                   for p in validate_events(bad_attr))
        bad_kind = [dict(events[0], kind="bogus")]
        assert any("unknown kind" in p
                   for p in validate_events(bad_kind))
        stuck_seq = [dict(events[0]), dict(events[0])]
        assert any("not increasing" in p
                   for p in validate_events(stuck_seq))

    def test_every_declared_kind_is_recordable(self):
        rec = FlightRecorder(capacity=len(EVENT_KINDS))
        for kind, required in EVENT_KINDS.items():
            rec.record(kind, **{k: "x" for k in required})
        assert validate_events(rec.events()) == []

    def test_dump_json_round_trip(self, tmp_path):
        rec = FlightRecorder(seed=5, origin="test")
        rec.record("redispatch", request=3, attempts=2)
        path = rec.dump_json(str(tmp_path / "flight.json"))
        with open(path) as fh:
            dump = json.load(fh)
        assert dump["origin"] == "test"
        assert dump["seed"] == 5
        assert validate_events(dump["events"]) == []

    def test_crash_hook_dumps_and_chains(self, tmp_path):
        rec = FlightRecorder(origin="crashy")
        rec.record("note", text="pre-crash")
        path = str(tmp_path / "crash.json")
        chained = []
        previous = sys.excepthook
        sys.excepthook = lambda *a: chained.append(a)
        try:
            rec.install_crash_dump(path)
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                sys.excepthook(*sys.exc_info())
        finally:
            sys.excepthook = previous
        assert len(chained) == 1  # the previous hook still ran
        with open(path) as fh:
            dump = json.load(fh)
        kinds = [e["attrs"]["text"] for e in dump["events"]]
        assert kinds == ["pre-crash", "crash: RuntimeError: boom"]


class TestTailCLI:
    def test_demo_writes_then_checks_clean(self, tmp_path, capsys):
        path = str(tmp_path / "demo.json")
        assert tail_cli.main([path, "--demo"]) == 0
        out = capsys.readouterr().out
        assert "worker.spawn" in out and "breaker.transition" in out
        assert tail_cli.main([path, "--check"]) == 0
        assert "schema valid" in capsys.readouterr().out

    def test_demo_dump_is_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        tail_cli._demo_dump(a)
        tail_cli._demo_dump(b)
        assert open(a).read() == open(b).read()

    def test_kind_and_last_filters(self, tmp_path, capsys):
        path = str(tmp_path / "demo.json")
        tail_cli._demo_dump(path)
        assert tail_cli.main([path, "--kind", "worker.spawn"]) == 0
        out = capsys.readouterr().out
        assert "worker.spawn" in out and "redispatch" not in out
        assert tail_cli.main([path, "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "note" in out and "worker.spawn" not in out

    def test_check_flags_corrupt_dump(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"events": [{"seq": 1, "id": "e0", "t": 0.0,
                                   "kind": "worker.kill",
                                   "origin": "x",
                                   "attrs": {"worker": "w"}}]}, fh)
        assert tail_cli.main([path, "--check"]) == 1
        assert "missing attr 'why'" in capsys.readouterr().out

    def test_unreadable_dump_is_an_error(self, tmp_path, capsys):
        assert tail_cli.main([str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


# ---------------------------------------------------------------------
# Prometheus exposition.
# ---------------------------------------------------------------------

class TestPromExposition:
    def _loaded_registry(self):
        reg = MetricsRegistry()
        reg.inc("serve.ok", 3)
        reg.inc("client.alice.ok", 2)
        reg.gauge("fleet.members", 4)
        rng = np.random.default_rng(1)
        for v in rng.lognormal(-2, 1, size=200):
            reg.observe("client.alice.latency_s", float(v))
        return reg

    def test_render_validates_clean(self):
        text = prom_exposition(self._loaded_registry().snapshot())
        assert validate_prom(text) == []
        assert "# TYPE repro_serve_ok counter" in text
        assert "# TYPE repro_fleet_members gauge" in text
        assert "# TYPE repro_client_alice_latency_s histogram" in text

    def test_bucket_ladder_is_cumulative_to_inf(self):
        text = prom_exposition(self._loaded_registry().snapshot())
        ladder = [float(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("repro_client_alice_latency_s"
                                     "_bucket")]
        assert ladder == sorted(ladder)
        assert ladder[-1] == 200  # +Inf agrees with _count
        assert "repro_client_alice_latency_s_count 200" in text

    def test_json_round_tripped_snapshot_renders(self):
        snap = json.loads(json.dumps(self._loaded_registry().snapshot()))
        text = prom_exposition(snap)  # bucket keys are strings now
        assert validate_prom(text) == []

    def test_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a_b")
        with pytest.raises(ValueError, match="sanitize"):
            prom_exposition(reg.snapshot())

    def test_validator_catches_broken_text(self):
        assert any("no # TYPE" in p
                   for p in validate_prom("orphan_sample 1\n"))
        bad_ladder = ("# TYPE h histogram\n"
                      'h_bucket{le="0.5"} 5\n'
                      'h_bucket{le="1.0"} 3\n'
                      'h_bucket{le="+Inf"} 5\n'
                      "h_sum 1.0\nh_count 5\n")
        assert any("non-cumulative" in p
                   for p in validate_prom(bad_ladder))
        no_inf = "# TYPE h histogram\nh_sum 1.0\nh_count 5\n"
        assert any("missing +Inf" in p for p in validate_prom(no_inf))

    def test_empty_snapshot_renders_empty(self):
        assert prom_exposition(MetricsRegistry().snapshot()) == ""


# ---------------------------------------------------------------------
# report CLI: --prom and event-aware --check.
# ---------------------------------------------------------------------

class TestReportCLI:
    @pytest.fixture(scope="class")
    def demo_trace(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("report") / "trace.json")
        assert report_cli.main(["--demo", path]) == 0
        return path

    def test_check_includes_flight_events(self, demo_trace, capsys):
        assert report_cli.main(["--check", demo_trace]) == 0
        assert "flight events" in capsys.readouterr().out

    def test_prom_output_is_valid(self, demo_trace, capsys):
        assert report_cli.main(["--prom", demo_trace]) == 0
        text = capsys.readouterr().out
        assert validate_prom(text) == []
        assert "# TYPE" in text

    def test_check_rejects_bad_embedded_events(self, demo_trace,
                                               tmp_path, capsys):
        with open(demo_trace) as fh:
            doc = json.load(fh)
        doc.setdefault("otherData", {})["events"] = [
            {"seq": 1, "id": "e0", "t": 0.0, "kind": "bogus.kind",
             "origin": "x", "attrs": {}}]
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as fh:
            json.dump(doc, fh)
        assert report_cli.main(["--check", bad]) == 1
        assert "otherData.events" in capsys.readouterr().out


# ---------------------------------------------------------------------
# Cross-process propagation: worker spans grafted under request spans.
# ---------------------------------------------------------------------

class TestServeTelemetryPlane:
    def test_worker_spans_graft_under_request_span(self, tmp_path):
        cfg = fast_config(slo={"client.latency_s": 120.0})
        with SpecializationService(cfg) as svc:
            svc.enable_tracing("serve-test")
            svc.run(piv_request(), client="alice")
            tracer = svc.tracer
            path = svc.export_trace(str(tmp_path / "serve.json"))
            health = svc.health()
        by_sid = {s.sid: s for s in tracer.spans}
        request = [s for s in tracer.spans
                   if s.parent is None and s.name.startswith("request:")]
        assert len(request) == 1
        request = request[0]
        assert request.cat == "serve"
        assert request.attrs["client"] == "alice"
        children = [s for s in tracer.spans
                    if s.parent == request.sid]
        names = {s.name for s in children}
        assert "queue" in names
        assert any(n.startswith("worker:") for n in names)
        worker_span = next(s for s in children
                           if s.name.startswith("worker:"))
        # the worker-side tree (compile/launch spans) hangs below the
        # synthetic worker span — the cross-process graft worked
        descendants = []
        frontier = [worker_span.sid]
        while frontier:
            sid = frontier.pop()
            kids = [s for s in tracer.spans if s.parent == sid]
            descendants += kids
            frontier += [s.sid for s in kids]
        cats = {s.cat for s in descendants}
        assert "launch" in cats
        for span in descendants:  # nesting within the grafted subtree
            parent = by_sid[span.parent]
            assert span.start >= parent.start - 1e-6
            assert span.start + span.duration \
                <= parent.start + parent.duration + 1e-6
        with open(path) as fh:
            doc = json.load(fh)
        assert validate_chrome(doc) == []
        assert validate_events(doc["otherData"]["events"]) == []
        # satellite: /health rows carry quantiles + SLO accounting
        alice = health["clients"]["alice"]
        assert alice["p95_s"] > 0.0
        assert alice["slo_breach"] == 0
        assert health["slo"]["thresholds"] == {
            "client.alice.latency_s": 120.0}
        assert health["flight"]["events"]

    def test_untraced_service_ships_no_span_payload(self):
        with SpecializationService(fast_config()) as svc:
            result = svc.run(piv_request(), client="bob")
        assert result.trace is None
        assert result.events == []
        assert result.wall_seconds > 0.0

    def test_slo_breach_surfaces_in_health(self):
        cfg = fast_config(slo={"client.latency_s": 1e-9})
        with SpecializationService(cfg) as svc:
            svc.run(piv_request(), client="carol")
            health = svc.health()
        assert health["clients"]["carol"]["slo_breach"] == 1
        assert health["slo"]["breaches"] == {
            "slo.breach.client.carol.latency_s": 1}

    def test_phase_histograms_recorded_for_traced_requests(self):
        with SpecializationService(fast_config()) as svc:
            svc.enable_tracing()
            svc.run(piv_request())
            snap = svc.metrics.snapshot()
        for name in ("serve.phase.compile_s", "serve.phase.launch_s",
                     "serve.exec_s", "serve.queue_wait_s"):
            assert snap["histograms"][name]["count"] >= 1

    def test_flight_recorder_sees_worker_lifecycle(self):
        with SpecializationService(fast_config()) as svc:
            svc.run(piv_request())
        events = svc.recorder.events()
        kinds = [e["kind"] for e in events]
        assert "worker.spawn" in kinds
        assert kinds[-1] == "note"  # "service stopped"
        assert validate_events(events) == []


class TestHarnessPropagation:
    def test_trace_ctx_implies_tracing_and_ships_events(self):
        from repro.apps.harness import run_request
        ctx = TraceContext(trace_id="req42", parent="request:42",
                           client="dana")
        result = run_request(piv_request(trace_ctx=ctx))
        assert result.trace is not None
        assert result.trace["name"] == "req42"
        roots = [s for s in result.trace["spans"]
                 if s["parent"] is None]
        assert roots[0]["attrs"]["trace_id"] == "req42"
        assert roots[0]["attrs"]["client"] == "dana"
        assert validate_events(result.events) == []

    def test_context_always_has_a_recorder(self):
        ctx = ExecutionContext(name="plane-test")
        assert isinstance(ctx.events, FlightRecorder)
        assert ctx.events.origin == "plane-test"


class TestFleetTelemetry:
    def test_member_stats_surface_trace_counters(self):
        with DeviceFleet(["c2070"] * 2, pool="inline") as fleet:
            fleet.run_requests([piv_request() for _ in range(3)])
            health = fleet.health_report()
        rows = {row["member"]: row for row in health["members"]}
        for row in rows.values():
            assert set(row["trace"]) == {"hits", "deopts", "records"}
        assert validate_events(health["flight"]["events"]) == []
        kinds = [e["kind"] for e in health["flight"]["events"]]
        assert kinds.count("fleet.place") == 3

    def test_fleet_grafts_member_results(self, tmp_path):
        with DeviceFleet(["c2070"], pool="inline") as fleet:
            fleet.enable_tracing()
            fleet.run_requests([piv_request()])
            path = fleet.export_trace(str(tmp_path / "fleet.json"))
        wrappers = [s for s in fleet.tracer.spans
                    if s.parent is None
                    and s.name.startswith("request:")]
        assert len(wrappers) == 1
        grafted = [s for s in fleet.tracer.spans
                   if s.parent == wrappers[0].sid]
        assert grafted  # the member's span tree came back
        with open(path) as fh:
            assert validate_chrome(json.load(fh)) == []

"""Capability-model tests: DeviceCaps, the three generations, the guard.

The refactor's contract has three parts, each verified here:

* the declarative :class:`DeviceCaps` fields/methods reproduce the
  generation rules the engines used to branch on (segment sizes,
  half-warp vs full-warp grouping, transaction billing);
* the Kepler-class K20 — a device expressible *only* through the
  capability model — behaves correctly through occupancy, coalescing,
  compilation (``sm_35``), and whole-app runs, and the paper's
  specialization win spans all three generations;
* the grep guard: no source file outside ``gpusim/device.py`` may
  compare ``compute_capability`` components ever again.
"""

import pathlib
import re

import numpy as np
import pytest

from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.piv import PIVConfig, PIVProblem
from repro.gpusim import (DEVICES, DeviceCaps, OccupancyError,
                          TESLA_C1060, TESLA_C2070, TESLA_K20,
                          default_caps, occupancy)
from repro.gpusim.coalescing import (global_transactions,
                                     shared_conflict_factor)
from repro.gpusim.device import CAPS_FERMI, CAPS_KEPLER, CAPS_TESLA
from repro.kernelc import nvcc

FULL = np.ones(32, dtype=bool)


def seq_addrs(base=0, stride=4):
    return (base + np.arange(32, dtype=np.int64) * stride).astype(np.uint64)


# ---------------------------------------------------------------------
# The declarative capability set.
# ---------------------------------------------------------------------

class TestDeviceCaps:
    def test_default_caps_per_generation(self):
        assert default_caps((1, 3)) is CAPS_TESLA
        assert default_caps((1, 2)) is CAPS_TESLA
        assert default_caps((2, 0)) is CAPS_FERMI
        assert default_caps((2, 1)) is CAPS_FERMI
        assert default_caps((3, 0)) is CAPS_KEPLER
        assert default_caps((3, 5)) is CAPS_KEPLER

    def test_specs_carry_their_generation_caps(self):
        assert TESLA_C1060.caps is CAPS_TESLA
        assert TESLA_C2070.caps is CAPS_FERMI
        assert TESLA_K20.caps is CAPS_KEPLER

    def test_tesla_narrow_segment_rule(self):
        # CC 1.x shrinks the 128B segment for narrow accesses.
        assert CAPS_TESLA.segment_bytes(1) == 32
        assert CAPS_TESLA.segment_bytes(2) == 64
        assert CAPS_TESLA.segment_bytes(4) == 128
        assert CAPS_TESLA.segment_bytes(8) == 128

    def test_full_warp_devices_use_line_size(self):
        for caps in (CAPS_FERMI, CAPS_KEPLER):
            for itemsize in (1, 2, 4, 8):
                assert caps.segment_bytes(itemsize) == 128

    def test_group_spans(self):
        assert TESLA_C1060.coalesce_groups() == ((0, 16), (16, 32))
        assert TESLA_C1060.shared_groups() == ((0, 16), (16, 32))
        for spec in (TESLA_C2070, TESLA_K20):
            assert spec.coalesce_groups() == ((0, 32),)
            assert spec.shared_groups() == ((0, 32),)

    def test_transaction_billing(self):
        assert TESLA_C1060.coalesce_line_bytes() == 64
        assert TESLA_C2070.coalesce_line_bytes() == 128
        assert TESLA_K20.coalesce_line_bytes() == 128

    def test_mul24_inversion(self):
        # The paper's §2.4 inversion: mul24 native on CC 1.x only.
        assert TESLA_C1060.caps.native_mul24
        assert not TESLA_C2070.caps.native_mul24
        assert not TESLA_K20.caps.native_mul24
        assert TESLA_C1060.issue_cost["mul24"] \
            < TESLA_C1060.issue_cost["imul"]
        assert TESLA_C2070.issue_cost["imul"] \
            < TESLA_C2070.issue_cost["mul24"]

    def test_caps_override_is_honored(self):
        from repro.gpusim import DeviceSpec
        import dataclasses
        odd = DeviceCaps(full_warp_coalescing=True,
                         coalesce_line_bytes=256,
                         smem_half_warp=False, native_mul24=False)
        spec = dataclasses.replace(TESLA_C2070, caps=odd)
        assert spec.coalesce_line_bytes() == 256
        # while a None caps re-derives from the CC tuple
        spec2 = dataclasses.replace(TESLA_C2070, caps=None)
        assert spec2.caps is CAPS_FERMI
        assert isinstance(spec2, DeviceSpec)


# ---------------------------------------------------------------------
# The Kepler-class device, unit level.
# ---------------------------------------------------------------------

class TestK20:
    def test_registry_and_arch(self):
        assert DEVICES["k20"] is TESLA_K20
        assert TESLA_K20.arch == "sm_35"
        assert TESLA_K20.compute_capability == (3, 5)

    def test_sm35_compiles_with_arch_macro(self):
        src = """
        __global__ void probe(int *out) {
        #if __CUDA_ARCH__ >= 350
            out[threadIdx.x] = 1;
        #else
            out[threadIdx.x] = 0;
        #endif
        }
        """
        module = nvcc(src, arch="sm_35")
        assert "probe" in module.kernels

    def test_coalescing_matches_fermi_rule(self):
        # Same full-warp 128B line rule as Fermi, by capability.
        for addrs, expect in [(seq_addrs(), 1),
                              (seq_addrs(base=64), 2),
                              (seq_addrs(stride=128), 32)]:
            assert global_transactions(addrs, FULL, 4, TESLA_K20) \
                == global_transactions(addrs, FULL, 4, TESLA_C2070) \
                == expect

    def test_bank_conflicts_full_warp(self):
        # 32 banks, full-warp resolution: stride-2 word indices
        # conflict 2-way on K20 just as on Fermi.
        addrs = (np.arange(32, dtype=np.int64) * 8).astype(np.uint64)
        k20 = shared_conflict_factor(addrs, FULL, 4, TESLA_K20)
        fermi = shared_conflict_factor(addrs, FULL, 4, TESLA_C2070)
        assert k20 == fermi == 2.0

    def test_occupancy_uses_wider_sm_limits(self):
        # 64 warps/SM and 16 blocks/SM: a tiny block count-caps at 16.
        occ = occupancy(TESLA_K20, 64, 16, 0)
        assert occ.blocks_per_sm == 16
        occ = occupancy(TESLA_K20, 1024, 32, 0)
        assert occ.warps_per_sm == 64
        assert occ.fraction(TESLA_K20) == 1.0

    def test_occupancy_register_headroom(self):
        # 100 regs/thread is fatal on Fermi (63 cap), fine on K20.
        with pytest.raises(OccupancyError):
            occupancy(TESLA_C2070, 64, 100, 0)
        assert occupancy(TESLA_K20, 64, 100, 0).blocks_per_sm >= 1

    def test_k20_not_equal_fermi_spec(self):
        assert TESLA_K20.regs_per_sm == 2 * TESLA_C2070.regs_per_sm
        assert TESLA_K20.max_regs_per_thread == 255


# ---------------------------------------------------------------------
# App level: the paper's claim holds on every generation.
# ---------------------------------------------------------------------

class TestThreeGenerations:
    """One PIV problem, three devices: SK wins, results bit-identical."""

    PROBLEM = PIVProblem("gen", 40, 40, mask=8, offs=3)

    def _result(self, device, specialize):
        spec = ProblemSpec(app="piv", problem=self.PROBLEM, seed=5,
                           device=device, memory_bytes=8 << 20)
        config = PIVConfig(rb=2, threads=32, specialize=specialize,
                           functional=True)
        return run_request(RunRequest(spec=spec, config=config))

    @pytest.mark.parametrize("device", sorted(DEVICES))
    def test_specialization_wins_and_is_bit_identical(self, device):
        sk = self._result(device, True)
        re_ = self._result(device, False)
        assert sk.seconds <= re_.seconds
        assert sk.same_output(re_)

    def test_generations_rank_plausibly(self):
        # Newer devices model faster on the same workload.
        seconds = {d: self._result(d, True).seconds for d in DEVICES}
        assert seconds["c2070"] < seconds["c1060"]
        assert seconds["k20"] < seconds["c1060"]


# ---------------------------------------------------------------------
# The guard: device.py is the only place that may compare CC tuples.
# ---------------------------------------------------------------------

class TestCapabilityGuard:
    SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

    def test_no_cc_comparisons_outside_device_py(self):
        """Generation conditionals must live on DeviceCaps, nowhere else.

        Any ``compute_capability[...]`` read outside device.py is a
        re-derivation of a capability and regresses the refactor; this
        guard makes the review rule mechanical.
        """
        pattern = re.compile(r"compute_capability\s*\[")
        offenders = []
        for path in sorted(self.SRC.rglob("*.py")):
            if path.name == "device.py" \
                    and path.parent.name == "gpusim":
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, (
            "compute_capability indexing found outside "
            "gpusim/device.py — use the DeviceCaps capability model "
            "instead:\n" + "\n".join(offenders))

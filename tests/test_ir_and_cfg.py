"""IR data structures, PTX rendering, CFG and post-dominator tests."""

import numpy as np
import pytest

from repro.kernelc import nvcc
from repro.kernelc import typesys as T
from repro.kernelc.cfg import CFG
from repro.kernelc.ir import (Imm, Instr, IRKernel, Label, Reg,
                              RegFactory, renumber)


def compile_kernel(src, **kw):
    mod = nvcc(src, **kw)
    return next(iter(mod.kernels.values())).ir


class TestIRPrinting:
    def test_ptx_header_and_params(self):
        ir = compile_kernel(
            "__global__ void k(float* out, int n) { out[0] = 1.0f; }")
        ptx = ir.to_ptx()
        assert ".entry k (.param u64 out, .param s32 n)" in ptx
        assert "st.global.f32" in ptx

    def test_shared_declaration_rendered(self):
        ir = compile_kernel("""
        __global__ void k(float* o) {
            __shared__ float buf[32];
            buf[threadIdx.x] = 1.0f;
            __syncthreads();
            o[threadIdx.x] = buf[0];
        }""")
        assert ".shared .align 4 .b8 buf[128];" in ir.to_ptx()
        assert "bar" in ir.to_ptx()

    def test_predicated_guard_rendered(self):
        ir = compile_kernel("""
        __global__ void k(float* o, int n) {
            if (threadIdx.x < n) o[threadIdx.x] = 1.0f;
        }""")
        assert "@!%p" in ir.to_ptx()

    def test_instruction_mnemonics(self):
        i = Instr("setp", T.S32, Reg("p1", T.BOOL),
                  [Imm(1, T.S32), Imm(2, T.S32)], cmp="lt")
        assert i.mnemonic() == "setp.lt.s32"
        ld = Instr("ld", T.F32, Reg("f1", T.F32), [Reg("rd1", T.U64)],
                   space="global")
        assert ld.mnemonic() == "ld.global.f32"

    def test_reg_factory_prefixes(self):
        f = RegFactory()
        assert f.new(T.S32).name.startswith("r")
        assert f.new(T.F32).name.startswith("f")
        assert f.new(T.BOOL).name.startswith("p")
        assert f.new(T.U64).name.startswith("rd")
        assert f.new(T.F64).name.startswith("fd")

    def test_renumber_density(self):
        ir = compile_kernel("""
        __global__ void k(const float* x, float* o, int n) {
            for (int i = 0; i < n; i++) o[i] = x[i] * 2.0f;
        }""")
        renumber(ir)
        names = set()
        for instr in ir.instructions():
            if instr.dst:
                names.add(instr.dst.name)
        numbers = sorted(int("".join(c for c in n if c.isdigit()))
                         for n in names)
        assert numbers == list(range(1, len(numbers) + 1))


class TestCFG:
    def test_straight_line_single_block(self):
        ir = compile_kernel(
            "__global__ void k(float* o) { o[0] = 1.0f; }")
        cfg = CFG(ir)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs == []

    def test_if_else_diamond(self):
        ir = compile_kernel("""
        __global__ void k(float* o, int n) {
            if (n > 0) o[0] = 1.0f; else o[1] = 2.0f;
            o[2] = 3.0f;
        }""")
        cfg = CFG(ir)
        entry = cfg.blocks[0]
        assert len(entry.succs) == 2

    def test_loop_has_back_edge(self):
        ir = compile_kernel("""
        __global__ void k(float* o, int n) {
            for (int i = 0; i < n; i++) o[i] = 1.0f;
        }""")
        cfg = CFG(ir)
        has_back_edge = any(s <= b.bid for b in cfg.blocks
                            for s in b.succs)
        assert has_back_edge

    def test_ipdom_of_if_is_join(self):
        ir = compile_kernel("""
        __global__ void k(float* o, int n) {
            if (n > 0) { o[0] = 1.0f; } else { o[1] = 2.0f; }
            o[2] = 3.0f;
        }""")
        cfg = CFG(ir)
        ipdom = cfg.ipdom_instr()
        assert len(ipdom) >= 1
        for branch_pc, join_pc in ipdom.items():
            assert join_pc > branch_pc
            # The join must be the store to o[2] region or later.

    def test_ipdom_handles_loops(self):
        ir = compile_kernel("""
        __global__ void k(float* o, int n) {
            int i = 0;
            while (i < n) { o[i] = 1.0f; i++; }
            o[0] = 2.0f;
        }""")
        cfg = CFG(ir)
        ipdom = cfg.ipdom_instr()
        # Loop-condition branch reconverges after the loop.
        for branch_pc, join_pc in ipdom.items():
            assert join_pc <= len(cfg.instrs)


class TestKernelMetadata:
    def test_shared_bytes(self):
        ir = compile_kernel("""
        __global__ void k(float* o) {
            __shared__ float a[16];
            __shared__ double b[4];
            a[0] = 1.0f; b[0] = 2.0;
            o[0] = a[0] + (float)b[0];
        }""")
        assert ir.shared_bytes == 16 * 4 + 4 * 8

    def test_local_bytes_for_dynamic_arrays(self):
        ir = compile_kernel("""
        __global__ void k(float* o, int j) {
            float buf[8];
            for (int i = 0; i < 8; i++) buf[i] = (float)i;
            o[0] = buf[j];
        }""")
        assert ir.local_bytes == 32

    def test_param_index(self):
        ir = compile_kernel(
            "__global__ void k(float* a, int b, float c) { a[0] = c; }")
        assert ir.param_index("b") == 1
        with pytest.raises(KeyError):
            ir.param_index("zzz")

    def test_module_constant_accounting(self):
        mod = nvcc("""
        __constant__ float w[10];
        __constant__ int idx[4];
        __global__ void k(float* o) { o[0] = w[idx[0]]; }
        """)
        assert mod.const_bytes == 40 + 16

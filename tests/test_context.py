"""ExecutionContext scoping, shims, and engine/fault ownership."""

import threading

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.faults import hooks as fault_hooks
from repro.gpupf import cache as gpupf_cache
from repro.gpusim import (GPU, TESLA_C1060, TESLA_C2070, default_engine,
                          gang_cache_stats, plan_cache_stats,
                          set_default_engine)
from repro.runtime import (ENGINES, ExecutionContext, current_context,
                           default_context, using_context)


class TestContextBasics:
    def test_defaults(self):
        ctx = ExecutionContext()
        assert ctx.device is TESLA_C2070
        assert ctx.engine in ENGINES
        assert ctx.injector is None
        assert ctx.cache_counters() == {"plan_hits": 0,
                                        "plan_misses": 0,
                                        "gang_hits": 0,
                                        "gang_misses": 0,
                                        "trace_hits": 0,
                                        "trace_misses": 0,
                                        "trace_records": 0,
                                        "trace_deopts": 0,
                                        "trace_aborts": 0}

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext(engine="warp-speed")
        ctx = ExecutionContext()
        with pytest.raises(ValueError):
            ctx.set_engine("nope")

    def test_current_falls_back_to_process_default(self):
        assert current_context() is default_context()

    def test_using_context_stacks_and_restores(self):
        outer = ExecutionContext(name="outer")
        inner = ExecutionContext(name="inner")
        with using_context(outer):
            assert current_context() is outer
            with using_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is default_context()

    def test_context_stack_is_thread_local(self):
        ctx = ExecutionContext(name="mine")
        seen = {}

        def probe():
            seen["ctx"] = current_context()

        with using_context(ctx):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        # The other thread never saw this thread's context.
        assert seen["ctx"] is default_context()


class TestContextState:
    def test_counters_are_per_context(self):
        a = ExecutionContext(name="a")
        b = ExecutionContext(name="b")
        a.plan_stats["misses"] += 3
        assert b.cache_counters()["plan_misses"] == 0
        assert a.cache_counters()["plan_misses"] == 3

    def test_launch_charges_ambient_context_only(self):
        from tests.helpers import KernelHarness

        src = """
        __global__ void copy(float *out, const float *in, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) out[i] = in[i];
        }
        """
        ctx = ExecutionContext(name="launches")
        other = ExecutionContext(name="idle")
        with using_context(ctx):
            h = KernelHarness(src)
            n = 64 * 4
            inp = np.arange(n, dtype=np.float32)
            for _ in range(2):
                h((4,), (64,), np.zeros(n, np.float32), inp, n,
                  engine="batched")
        counters = ctx.cache_counters()
        assert counters["plan_misses"] == 1
        assert counters["plan_hits"] == 1
        assert counters["gang_misses"] == 1
        assert counters["gang_hits"] == 1
        assert other.cache_counters()["plan_misses"] == 0

    def test_engine_selection_is_context_scoped(self):
        ctx = ExecutionContext(engine="serial")
        baseline = default_engine()
        with using_context(ctx):
            assert default_engine() == "serial"
            set_default_engine("batched")
            assert ctx.engine == "batched"
        assert default_engine() == baseline

    def test_stats_shims_read_current_context(self):
        ctx = ExecutionContext()
        ctx.plan_stats["hits"] = 7
        ctx.gang_stats["misses"] = 2
        with using_context(ctx):
            assert plan_cache_stats()["hits"] == 7
            assert gang_cache_stats()["misses"] == 2

    def test_kernel_cache_shim_follows_context(self):
        ctx = ExecutionContext()
        with using_context(ctx):
            assert gpupf_cache.DEFAULT_CACHE is ctx.kernel_cache
        assert (gpupf_cache.DEFAULT_CACHE
                is default_context().kernel_cache)

    def test_gpu_captures_construction_context(self):
        ctx = ExecutionContext(device=TESLA_C1060)
        with using_context(ctx):
            gpu = GPU()
        assert gpu.ctx is ctx
        assert gpu.spec is TESLA_C1060


class TestContextFaults:
    def test_install_from_plan_and_clear(self):
        ctx = ExecutionContext()
        plan = FaultPlan(seed=3, counts={"nvcc.compile": 1})
        injector = ctx.install_faults(plan)
        assert isinstance(injector, FaultInjector)
        assert ctx.injector is injector
        with pytest.raises(RuntimeError):
            ctx.install_faults(plan)
        ctx.clear_faults()
        assert ctx.injector is None

    def test_injecting_scoped_to_context(self):
        ctx = ExecutionContext()
        with ctx.injecting(FaultPlan(seed=0)) as injector:
            assert ctx.injector is injector
        assert ctx.injector is None

    def test_hooks_shim_sees_context_injector(self):
        ctx = ExecutionContext()
        with using_context(ctx):
            assert fault_hooks.ACTIVE is None
            with fault_hooks.injecting(FaultPlan(seed=5)) as injector:
                assert fault_hooks.ACTIVE is injector
                assert ctx.injector is injector
            assert fault_hooks.ACTIVE is None
        # Installing on a scoped context never touches the default one.
        assert default_context().injector is None

"""CLI entry-point tests (python -m repro ...)."""

import numpy as np
import pytest

from repro.__main__ import main


class TestCompileCommand:
    def test_compile_prints_ptx(self, tmp_path, capsys):
        src = tmp_path / "k.cu"
        src.write_text(
            "__global__ void k(float* o, int n) {\n"
            "  int i = threadIdx.x;\n"
            "  if (i < n) o[i] = (float)i;\n"
            "}\n")
        assert main(["compile", str(src)]) == 0
        out = capsys.readouterr().out
        assert ".entry k" in out
        assert "registers/thread" in out

    def test_compile_with_defines(self, tmp_path, capsys):
        src = tmp_path / "k.cu"
        src.write_text(
            "__global__ void k(float* o) {\n"
            "  float acc = 0.0f;\n"
            "  for (int i = 0; i < COUNT; i++) acc += 1.0f;\n"
            "  o[threadIdx.x] = acc * SCALE;\n"
            "}\n")
        assert main(["compile", str(src), "-D", "COUNT=4",
                     "-D", "SCALE=2.5"]) == 0
        out = capsys.readouterr().out
        assert "bra" not in out  # unrolled
        assert "10.0" in out     # 4 * 2.5 folded

    def test_arch_selection(self, tmp_path, capsys):
        src = tmp_path / "k.cu"
        src.write_text(
            "#if __CUDA_ARCH__ >= 200\n"
            "__global__ void k(float* o) { o[0] = 2.0f; }\n"
            "#else\n"
            "__global__ void k(float* o) { o[0] = 1.0f; }\n"
            "#endif\n")
        main(["compile", str(src), "--arch", "sm_13"])
        assert "1.0" in capsys.readouterr().out
        main(["compile", str(src), "--arch", "sm_20"])
        assert "2.0" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_prints_grid_and_optimum(self, capsys):
        assert main(["sweep", "--mask", "8", "--offs", "5",
                     "--width", "48", "--height", "48"]) == 0
        out = capsys.readouterr().out
        assert "% of peak" in out
        assert "optimum: rb=" in out

    def test_device_selection(self, capsys):
        assert main(["sweep", "--device", "c1060", "--mask", "8",
                     "--offs", "5", "--width", "48",
                     "--height", "48"]) == 0
        assert "C1060" in capsys.readouterr().out


class TestArgParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_source_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["compile", str(tmp_path / "missing.cu")])

"""Template-matching application tests (§5.1)."""

import numpy as np
import pytest

from repro.apps.template_matching import (MatchConfig, MatchProblem,
                                          TemplateMatcher, best_shift,
                                          corr2_map, cpu_match_seconds,
                                          tile_regions)
from repro.data.frames import roi_origin, template_sequence
from repro.gpupf import KernelCache
from repro.gpusim import TESLA_C1060, TESLA_C2070

# Paper-shaped scale (half the dissertation's 240x320 frames with a
# proportional template/ROI): affordable now that the batched engine
# absorbs the interpreter cost.
PROBLEM = MatchProblem("T", frame_h=120, frame_w=160, tmpl_h=28,
                       tmpl_w=24, shift_h=9, shift_w=11, n_frames=2)


@pytest.fixture(scope="module")
def workload():
    frames, tmpl, shifts = template_sequence(
        PROBLEM.frame_h, PROBLEM.frame_w, PROBLEM.tmpl_h, PROBLEM.tmpl_w,
        PROBLEM.shift_h, PROBLEM.shift_w, n_frames=2, seed=1)
    return frames, tmpl, shifts


class TestTiling:
    def test_exact_fit_single_region(self):
        regions = tile_regions(32, 32, 16, 16)
        assert len(regions) == 1
        assert regions[0].count == 4

    def test_right_edge_region(self):
        regions = tile_regions(20, 32, 16, 16)
        assert len(regions) == 2
        assert regions[1].tile_w == 4

    def test_all_four_regions(self):
        regions = tile_regions(20, 20, 16, 16)
        assert len(regions) == 4
        widths = {(r.tile_w, r.tile_h) for r in regions}
        assert widths == {(16, 16), (4, 16), (16, 4), (4, 4)}

    def test_tiles_cover_template_exactly(self):
        """Property: regions tile the template without gaps/overlap."""
        for (tw, th) in [(8, 8), (16, 12), (5, 7)]:
            for (tmw, tmh) in [(16, 16), (29, 39), (22, 30)]:
                covered = np.zeros((tmh, tmw), int)
                for r in tile_regions(tmw, tmh, tw, th):
                    for ty in range(r.tiles_y):
                        for tx in range(r.tiles_x):
                            y0 = r.y0 + ty * r.tile_h
                            x0 = r.x0 + tx * r.tile_w
                            covered[y0 : y0 + r.tile_h,
                                    x0 : x0 + r.tile_w] += 1
                assert (covered == 1).all(), (tw, th, tmw, tmh)

    def test_tile_larger_than_template_clamped(self):
        regions = tile_regions(10, 10, 64, 64)
        assert regions[0].tile_w == 10 and regions[0].tile_h == 10


class TestCorrectness:
    @pytest.mark.parametrize("specialize", [True, False])
    def test_matches_reference_map(self, workload, specialize):
        frames, tmpl, _ = workload
        m = TemplateMatcher(PROBLEM, tmpl,
                            MatchConfig(tile_w=8, tile_h=8, threads=64,
                                        specialize=specialize),
                            cache=KernelCache())
        result = m.match(frames[1])
        ref = corr2_map(frames[1], tmpl, PROBLEM.shift_h, PROBLEM.shift_w)
        np.testing.assert_allclose(result.ncc, ref, atol=1e-4)

    def test_finds_ground_truth_shift(self, workload):
        frames, tmpl, shifts = workload
        m = TemplateMatcher(PROBLEM, tmpl, MatchConfig(),
                            cache=KernelCache())
        for frame, truth in zip(frames, shifts):
            assert m.match(frame).shift == truth

    @pytest.mark.parametrize("tile", [(16, 8), (7, 5)])
    def test_tile_size_does_not_change_result(self, workload, tile):
        frames, tmpl, _ = workload
        base = TemplateMatcher(PROBLEM, tmpl, MatchConfig(
            tile_w=8, tile_h=8), cache=KernelCache()).match(frames[1])
        other = TemplateMatcher(PROBLEM, tmpl, MatchConfig(
            tile_w=tile[0], tile_h=tile[1]),
            cache=KernelCache()).match(frames[1])
        np.testing.assert_allclose(base.ncc, other.ncc, atol=1e-4)

    def test_c1060_matches_c2070(self, workload):
        frames, tmpl, _ = workload
        r1 = TemplateMatcher(PROBLEM, tmpl, MatchConfig(),
                             device=TESLA_C1060,
                             cache=KernelCache()).match(frames[1])
        r2 = TemplateMatcher(PROBLEM, tmpl, MatchConfig(),
                             device=TESLA_C2070,
                             cache=KernelCache()).match(frames[1])
        np.testing.assert_allclose(r1.ncc, r2.ncc, atol=1e-5)

    def test_ncc_peak_is_high(self, workload):
        frames, tmpl, _ = workload
        m = TemplateMatcher(PROBLEM, tmpl, MatchConfig(),
                            cache=KernelCache())
        result = m.match(frames[0])
        assert result.ncc.max() > 0.95  # near-perfect at ground truth


class TestPerformanceShape:
    def test_sk_not_slower_than_re(self, workload):
        frames, tmpl, _ = workload
        sk = TemplateMatcher(PROBLEM, tmpl, MatchConfig(specialize=True),
                             cache=KernelCache()).match(frames[1])
        re = TemplateMatcher(PROBLEM, tmpl, MatchConfig(specialize=False),
                             cache=KernelCache()).match(frames[1])
        assert sk.kernel_seconds <= re.kernel_seconds

    def test_gpu_beats_modeled_cpu_at_scale(self):
        """At paper-scale shift counts the GPU wins; at toy sizes the
        launch overhead dominates — which is itself the correct shape.
        Sampled (non-functional) timing keeps the sweep fast."""
        big = MatchProblem("big", frame_h=220, frame_w=300, tmpl_h=48,
                           tmpl_w=40, shift_h=21, shift_w=21)
        frames, tmpl, _ = template_sequence(
            big.frame_h, big.frame_w, big.tmpl_h, big.tmpl_w,
            big.shift_h, big.shift_w, n_frames=1, seed=0)
        gpu = TemplateMatcher(big, tmpl,
                              MatchConfig(functional=False,
                                          sample_blocks=2),
                              cache=KernelCache()).match(frames[0])
        cpu = cpu_match_seconds(big.tmpl_h, big.tmpl_w, big.shift_h,
                                big.shift_w)
        assert gpu.kernel_seconds < cpu

    def test_streaming_reuses_compiled_kernels(self, workload):
        frames, tmpl, _ = workload
        cache = KernelCache()
        m = TemplateMatcher(PROBLEM, tmpl, MatchConfig(), cache=cache)
        m.match(frames[0])
        misses = cache.misses
        m.match(frames[1])  # second frame: no recompilation
        assert cache.misses == misses


class TestGeometry:
    def test_roi_origin_centered(self):
        ry0, rx0 = roi_origin(100, 100, 20, 20, 10, 10)
        assert ry0 == (100 - 20 - 10 + 1) // 2

    def test_roi_too_large_raises(self):
        with pytest.raises(ValueError):
            roi_origin(30, 30, 20, 20, 20, 20)

    def test_template_shape_validated(self, workload):
        _, tmpl, _ = workload
        with pytest.raises(ValueError):
            TemplateMatcher(PROBLEM, tmpl[:-1], MatchConfig(),
                            cache=KernelCache())

"""PIV application tests (§5.2)."""

import numpy as np
import pytest

from repro.apps.piv import (PIVConfig, PIVProblem, PIVProcessor,
                            displacement_field, run_piv, ssd_scores)
from repro.data.piv import particle_image_pair
from repro.gpupf import KernelCache
from repro.gpusim import TESLA_C1060, TESLA_C2070

# Paper-shaped scale (a quarter of the dissertation's 256x256 frames
# with its 16-px masks): affordable now that the batched engine absorbs
# the interpreter cost.
PROBLEM = PIVProblem("T", 96, 128, mask=16, offs=7, overlap=0)


@pytest.fixture(scope="module")
def workload():
    a, b = particle_image_pair(96, 128, displacement=(1, -2), seed=3)
    ref = ssd_scores(a, b, PROBLEM)
    return a, b, ref


class TestProblemGeometry:
    def test_window_origins_have_margin(self):
        xs, ys = PROBLEM.window_origins()
        margin = PROBLEM.offs // 2
        assert (xs - margin > 0).all() and (ys - margin > 0).all()
        assert (xs + PROBLEM.mask + margin < PROBLEM.img_w).all()

    def test_overlap_increases_window_count(self):
        base = PIVProblem("a", 120, 160, mask=16, offs=9, overlap=0)
        dense = PIVProblem("b", 120, 160, mask=16, offs=9, overlap=8)
        assert dense.n_windows > base.n_windows

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            PIVConfig(variant="nope")
        with pytest.raises(ValueError):
            PIVConfig(rb=0)
        with pytest.raises(ValueError):
            PIVConfig(threads=48)


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["tree", "warpspec"])
    @pytest.mark.parametrize("specialize", [True, False])
    def test_scores_match_reference(self, workload, variant, specialize):
        a, b, ref = workload
        r = run_piv(PROBLEM, a, b,
                    PIVConfig(variant=variant, rb=4, threads=64,
                              specialize=specialize),
                    cache=KernelCache())
        np.testing.assert_allclose(r.scores, ref, rtol=1e-4)

    @pytest.mark.parametrize("rb", [1, 3, 8])
    def test_rb_does_not_change_scores(self, workload, rb):
        """RB is an implementation parameter: results are invariant,
        including when RB does not divide the offset count."""
        a, b, ref = workload
        r = run_piv(PROBLEM, a, b,
                    PIVConfig(variant="tree", rb=rb, threads=32),
                    cache=KernelCache())
        np.testing.assert_allclose(r.scores, ref, rtol=1e-4)

    def test_recovers_uniform_flow(self, workload):
        a, b, ref = workload
        r = run_piv(PROBLEM, a, b, PIVConfig(rb=5, threads=64),
                    cache=KernelCache())
        truth = np.array([1, -2])
        frac = (r.vectors == truth).all(axis=1).mean()
        assert frac > 0.8

    def test_both_devices_agree(self, workload):
        a, b, ref = workload
        cfg = PIVConfig(rb=4, threads=64)
        r1 = run_piv(PROBLEM, a, b, cfg, device=TESLA_C1060,
                     cache=KernelCache())
        r2 = run_piv(PROBLEM, a, b, cfg, device=TESLA_C2070,
                     cache=KernelCache())
        np.testing.assert_allclose(r1.scores, r2.scores, rtol=1e-5)


class TestSpecializationShape:
    def test_sk_faster_than_re(self, workload):
        a, b, _ = workload
        cache = KernelCache()
        sk = run_piv(PROBLEM, a, b,
                     PIVConfig(rb=4, threads=64, specialize=True),
                     cache=cache)
        re = run_piv(PROBLEM, a, b,
                     PIVConfig(rb=4, threads=64, specialize=False),
                     cache=cache)
        assert sk.kernel_seconds < re.kernel_seconds

    def test_sk_scalarizes_accumulators(self):
        proc_sk = PIVProcessor(PROBLEM, PIVConfig(rb=4, threads=64,
                                                  specialize=True),
                               cache=KernelCache())
        proc_re = PIVProcessor(PROBLEM, PIVConfig(rb=4, threads=64,
                                                  specialize=False),
                               cache=KernelCache())
        assert not proc_sk.kernel.ir.local_arrays
        assert proc_re.kernel.ir.local_arrays

    def test_register_count_scales_with_rb(self):
        regs = [PIVProcessor(PROBLEM,
                             PIVConfig(rb=rb, threads=64),
                             cache=KernelCache()).kernel.reg_count
                for rb in (1, 4, 8)]
        assert regs[0] < regs[1] < regs[2]

    def test_sampled_timing_close_to_full(self, workload):
        """functional=False sampling must estimate the same time."""
        a, b, _ = workload
        full = run_piv(PROBLEM, a, b,
                       PIVConfig(rb=4, threads=64, functional=True),
                       cache=KernelCache())
        samp = run_piv(PROBLEM, a, b,
                       PIVConfig(rb=4, threads=64, functional=False,
                                 sample_blocks=4),
                       cache=KernelCache())
        assert samp.scores is None
        ratio = samp.kernel_seconds / full.kernel_seconds
        assert 0.7 < ratio < 1.4

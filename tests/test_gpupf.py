"""GPU-PF framework tests: parameters, resources, actions, phases."""

import numpy as np
import pytest

from repro.gpupf import KernelCache, Pipeline, PipelineError
from repro.gpupf.params import Schedule, StepParam
from repro.gpusim import GPU, TESLA_C2070
from repro.kernelc.templates import ctrt_block

SCALE_SRC = ctrt_block({"FACTOR": "factor"}) + """
__global__ void scale(const float* in, float* out, int n, int factor) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = in[i] * (float)FACTOR_VAL;
}
"""


@pytest.fixture
def gpu():
    return GPU(TESLA_C2070)


def build_scale_pipeline(gpu, cache=None, specialize=True):
    pipe = Pipeline(gpu, "scale", cache=cache or KernelCache())
    n = pipe.int_param("n", 256)
    factor = pipe.int_param("factor", 3)
    extent = pipe.extent_param("buf", (256,), 4)
    extent.derive_from([n], lambda k: ((k,), 4))
    defines = {"CT_FACTOR": 1, "FACTOR": factor} if specialize else {}
    mod = pipe.module("mod", SCALE_SRC, defines=defines)
    k = pipe.kernel("scale", mod)
    h_in = pipe.host_memory("h_in", extent)
    h_out = pipe.host_memory("h_out", extent)
    d_in = pipe.global_memory("d_in", extent)
    d_out = pipe.global_memory("d_out", extent)
    grid = pipe.triplet_param("grid", (2, 1, 1))
    block = pipe.triplet_param("block", (128, 1, 1))
    pipe.copy("upload", h_in, d_in)
    pipe.kernel_exec("run", k, grid, block, [d_in, d_out, n, factor])
    pipe.copy("download", d_out, h_out)
    return pipe


class TestPhases:
    def test_specification_allocates_nothing(self, gpu):
        build_scale_pipeline(gpu)
        assert not gpu.gmem.allocations

    def test_refresh_realizes_everything(self, gpu):
        pipe = build_scale_pipeline(gpu)
        touched = pipe.refresh()
        assert touched == len(pipe.resources)
        assert len(gpu.gmem.allocations) == 2
        assert pipe.resources["scale"].compiled is not None

    def test_second_refresh_is_noop(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.refresh()
        assert pipe.refresh() == 0

    def test_parameter_change_refreshes_subgraph(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.refresh()
        pipe.set_param("factor", 5)
        touched = pipe.refresh()
        # module + kernel recompile; memories (driven by n) do not.
        assert touched == 2

    def test_extent_change_reallocates(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.refresh()
        before = pipe.resources["d_in"].addr
        pipe.set_param("n", 512)
        pipe.refresh()
        assert pipe.resources["d_in"].addr != before
        assert pipe.resources["h_in"].array.size == 512

    def test_end_to_end_result(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.refresh()
        rng = np.random.default_rng(0)
        data = rng.random(256).astype(np.float32)
        pipe.resources["h_in"].array[:] = data
        pipe.run(1)
        np.testing.assert_allclose(pipe.resources["h_out"].array,
                                   data * 3.0, rtol=1e-6)

    def test_respecialization_changes_result(self, gpu):
        pipe = build_scale_pipeline(gpu)
        data = np.ones(256, np.float32)
        pipe.refresh()
        pipe.resources["h_in"].array[:] = data
        pipe.run(1)
        pipe.set_param("factor", 7)
        pipe.run(1)
        np.testing.assert_allclose(pipe.resources["h_out"].array, 7.0)

    def test_log_has_refresh_and_iteration_lines(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.run(2)
        text = "\n".join(pipe.log)
        assert "refresh: ModuleResource" in text
        assert "regs" in text
        assert "iter 0: run" in text
        assert "iter 1: download" in text


class TestCache:
    def test_recompilation_hits_cache(self, gpu):
        cache = KernelCache()
        pipe = build_scale_pipeline(gpu, cache=cache)
        pipe.refresh()
        assert cache.misses == 1
        pipe.set_param("factor", 9)
        pipe.refresh()
        assert cache.misses == 2
        pipe.set_param("factor", 3)  # back to a seen value
        pipe.refresh()
        assert cache.misses == 2
        assert cache.hits >= 1

    def test_disk_cache_roundtrip(self, gpu, tmp_path):
        cache1 = KernelCache(disk_dir=str(tmp_path))
        pipe1 = build_scale_pipeline(gpu, cache=cache1)
        pipe1.refresh()
        assert cache1.misses == 1
        cache2 = KernelCache(disk_dir=str(tmp_path))
        pipe2 = build_scale_pipeline(GPU(TESLA_C2070), cache=cache2)
        pipe2.refresh()
        assert cache2.misses == 0 and cache2.hits == 1

    def test_cache_key_separates_arch(self, gpu):
        cache = KernelCache()
        m1 = cache.compile(SCALE_SRC, arch="sm_13")
        m2 = cache.compile(SCALE_SRC, arch="sm_20")
        assert m1 is not m2
        assert cache.misses == 2

    def test_stats_reports_corrupt_counter(self):
        cache = KernelCache()
        assert cache.stats() == {"hits": 0, "misses": 0, "corrupt": 0,
                                 "latch_timeouts": 0}

    def test_concurrent_same_key_compiles_once(self):
        # Single-flight: 8 threads racing one key produce exactly one
        # nvcc run; the other 7 wait on the latch and take hits.
        import threading
        cache = KernelCache()
        barrier = threading.Barrier(8)
        modules = []

        def worker():
            barrier.wait()
            modules.append(cache.compile(SCALE_SRC,
                                         defines={"CT_FACTOR": 1,
                                                  "FACTOR": 3}))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(modules) == 8
        assert all(m is modules[0] for m in modules)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 7

    def test_concurrent_distinct_keys_all_compile(self):
        import threading
        cache = KernelCache()
        barrier = threading.Barrier(6)
        results = {}

        def worker(factor):
            barrier.wait()
            results[factor] = cache.compile(
                SCALE_SRC, defines={"CT_FACTOR": 1, "FACTOR": factor})

        threads = [threading.Thread(target=worker, args=(f,))
                   for f in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        assert len({id(m) for m in results.values()}) == 6
        assert cache.stats()["misses"] == 6

    def test_corrupt_disk_entry_quarantined(self, gpu, tmp_path):
        cache1 = KernelCache(disk_dir=str(tmp_path))
        cache1.compile(SCALE_SRC)
        (entry,) = tmp_path.glob("*.mod")
        entry.write_bytes(b"\x00garbage" * 4)

        cache2 = KernelCache(disk_dir=str(tmp_path))
        module = cache2.compile(SCALE_SRC)
        assert module is not None
        stats = cache2.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1  # recompiled after quarantine
        assert list(tmp_path.glob("*.mod.corrupt"))
        # The entry was rewritten in place: a third cache loads clean.
        cache3 = KernelCache(disk_dir=str(tmp_path))
        cache3.compile(SCALE_SRC)
        assert cache3.stats() == {"hits": 1, "misses": 0, "corrupt": 0,
                                  "latch_timeouts": 0}

    def test_legacy_version_entry_quarantined(self, gpu, tmp_path):
        import pickle
        cache1 = KernelCache(disk_dir=str(tmp_path))
        module = cache1.compile(SCALE_SRC)
        (entry,) = tmp_path.glob("*.mod")
        # A structurally valid pickle from an older format version must
        # be quarantined, not unpickled into the running process.
        entry.write_bytes(pickle.dumps((1, module)))

        cache2 = KernelCache(disk_dir=str(tmp_path))
        cache2.compile(SCALE_SRC)
        stats = cache2.stats()
        assert stats["corrupt"] == 1 and stats["misses"] == 1
        assert list(tmp_path.glob("*.mod.corrupt"))


class TestSchedulesAndSteps:
    def test_schedule_period_and_delay(self, gpu):
        s = Schedule("s", period=3, delay=2)
        fired = [i for i in range(10) if s.fires(i)]
        assert fired == [2, 5, 8]

    def test_action_schedule_respected(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.actions["download"].schedule = Schedule("every2", 2, 0)
        pipe.run(4)
        assert pipe.actions["download"].runs == 2
        assert pipe.actions["run"].runs == 4

    def test_step_param_wraps(self, gpu):
        step = StepParam("s", 0, 6, 2)
        values = []
        for _ in range(6):
            values.append(step.value)
            step.advance()
        assert values == [0, 2, 4, 0, 2, 4]

    def test_subset_window_streams(self, gpu):
        """A device-resident window advancing over frames (Table 4.3)."""
        pipe = Pipeline(gpu, "stream", cache=KernelCache())
        frames = pipe.extent_param("frames", (4, 8), 4)
        window = pipe.subset_param("window", 0, 8, stride=8)
        h_all = pipe.host_memory("h_all", frames)
        d_all = pipe.global_memory("d_all", frames)
        win = pipe.subset("win", d_all, window)
        out_extent = pipe.extent_param("out", (8,), 4)
        h_out = pipe.host_memory("h_out", out_extent)
        pipe.copy("up", h_all, d_all,
                  schedule=pipe.schedule_param("once", 0, 0))
        pipe.copy("down", win, h_out)
        pipe.refresh()
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        pipe.resources["h_all"].array[:] = data
        pipe.gpu.gmem.write(d_all.device_address(), data)
        seen = []
        for i in range(4):
            pipe.run(1)
            seen.append(pipe.resources["h_out"].array.copy())
        for i in range(4):
            np.testing.assert_array_equal(seen[i], data[i])


class TestValidation:
    def test_duplicate_name_rejected(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        pipe.int_param("n", 1)
        with pytest.raises(PipelineError):
            pipe.int_param("n", 2)

    def test_unknown_param_set_rejected(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        with pytest.raises(PipelineError):
            pipe.set_param("nope", 1)

    def test_exec_before_refresh_fails(self, gpu):
        pipe = build_scale_pipeline(gpu)
        with pytest.raises(Exception):
            pipe.actions["run"].execute(0)

    def test_constant_memory_resource(self, gpu):
        src = """
        __constant__ float taps[4];
        __global__ void k(float* out) {
            out[threadIdx.x] = taps[threadIdx.x];
        }
        """
        pipe = Pipeline(gpu, cache=KernelCache())
        mod = pipe.module("m", src)
        k = pipe.kernel("k", mod)
        cmem = pipe.constant_memory("taps", mod, "taps")
        ext = pipe.extent_param("e", (4,), 4)
        h_taps = pipe.host_memory("h_taps", ext)
        h_out = pipe.host_memory("h_out", ext)
        d_out = pipe.global_memory("d_out", ext)
        pipe.copy("up", h_taps, cmem)
        pipe.kernel_exec("run", k, 1, 4, [d_out])
        pipe.copy("down", d_out, h_out)
        pipe.refresh()
        pipe.resources["h_taps"].array[:] = [1, 2, 3, 4]
        pipe.run(1)
        np.testing.assert_array_equal(pipe.resources["h_out"].array,
                                      [1, 2, 3, 4])


class TestTextureResource:
    def test_pipeline_texture_binding(self, gpu):
        """A GPU-PF texture resource binds and samples end to end."""
        src = """
        texture<float, 2> imgTex;
        __global__ void grab(float* out, int w) {
            int x = threadIdx.x;
            int y = threadIdx.y;
            out[y * w + x] = tex2D(imgTex, (float)x + 0.5f,
                                   (float)y + 0.5f);
        }
        """
        pipe = Pipeline(gpu, "texpipe", cache=KernelCache())
        ext = pipe.extent_param("img", (4, 8), 4)
        mod = pipe.module("m", src)
        k = pipe.kernel("grab", mod)
        h_img = pipe.host_memory("h_img", ext)
        d_img = pipe.global_memory("d_img", ext)
        traits = pipe.array_traits("traits", filter="point",
                                   address="clamp")
        pipe.texture("imgTex", mod, d_img, traits)
        h_out = pipe.host_memory("h_out", ext)
        d_out = pipe.global_memory("d_out", ext)
        pipe.copy("up", h_img, d_img)
        pipe.kernel_exec("run", k, 1, (8, 4), [d_out, 8])
        pipe.copy("down", d_out, h_out)
        pipe.refresh()
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        pipe.resources["h_img"].array[:] = data
        pipe.run(1)
        np.testing.assert_array_equal(pipe.resources["h_out"].array,
                                      data)

    def test_texture_requires_global_memory(self, gpu):
        src = "texture<float, 2> t;\n__global__ void k(float* o) " \
              "{ o[0] = tex2D(t, 0.5f, 0.5f); }"
        pipe = Pipeline(gpu, cache=KernelCache())
        ext = pipe.extent_param("e", (4, 4), 4)
        mod = pipe.module("m", src)
        h_mem = pipe.host_memory("h", ext)
        pipe.texture("t", mod, h_mem)
        with pytest.raises(Exception, match="global"):
            pipe.refresh()


class TestTimingReport:
    def test_report_structure(self, gpu):
        pipe = build_scale_pipeline(gpu)
        pipe.run(3)
        report = pipe.timing_report()
        assert "per-operation timing (3 iterations)" in report
        assert "runs=3" in report
        assert "KernelExecution" in report
        assert "high-level: kernels" in report
        # Per-action percentages (the x.y% cells) sum to ~100.
        import re
        pcts = [float(m) for m in re.findall(r"(\d+\.\d)%", report)]
        assert sum(pcts) == pytest.approx(100.0, abs=1.0)

    def test_report_before_running(self, gpu):
        pipe = build_scale_pipeline(gpu)
        report = pipe.timing_report()
        assert "0 iterations" in report

"""Integer template parameters — the Appendix-B C++-template route."""

import numpy as np
import pytest

from repro.kernelc import CompileError, nvcc
from tests.helpers import run_kernel


class TestTemplateFunctions:
    def test_value_template_inlines_constant(self):
        src = """
        template <int N>
        __device__ float scaleBy(float x) { return x * (float)N; }
        __global__ void k(const float* in, float* out) {
            out[threadIdx.x] = scaleBy<3>(in[threadIdx.x]);
        }
        """
        x = np.arange(8, dtype=np.float32)
        out = np.zeros(8, np.float32)
        (_, out_), _ = run_kernel(src, 1, 8, x, out)
        np.testing.assert_array_equal(out_, x * 3)

    def test_template_controls_unrolling(self):
        """The gpu::ctrt pattern: a template count drives a loop."""
        src = """
        template <int COUNT>
        __device__ float sumFirst(const float* p) {
            float acc = 0.0f;
            for (int i = 0; i < COUNT; i++) acc += p[i];
            return acc;
        }
        __global__ void k(const float* in, float* out) {
            out[threadIdx.x] = sumFirst<5>(in);
        }
        """
        mod = nvcc(src)
        assert "bra" not in mod.kernel("k").to_ptx()  # fully unrolled
        x = np.arange(8, dtype=np.float32)
        out = np.zeros(1, np.float32)
        (_, out_), _ = run_kernel(src, 1, 1, x, out)
        assert out_[0] == x[:5].sum()

    def test_multiple_template_params(self):
        src = """
        template <int A, int B>
        __device__ int combine(int x) { return x * A + B; }
        __global__ void k(int* out) {
            out[threadIdx.x] = combine<3, 11>((int)threadIdx.x);
        }
        """
        out = np.zeros(4, np.int32)
        (out_,), _ = run_kernel(src, 1, 4, out)
        np.testing.assert_array_equal(out_, np.arange(4) * 3 + 11)

    def test_different_instantiations_coexist(self):
        src = """
        template <int N>
        __device__ int timesN(int x) { return x * N; }
        __global__ void k(int* out) {
            out[threadIdx.x] = timesN<2>(10) + timesN<5>(100);
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        assert out_[0] == 20 + 500

    def test_macro_as_template_argument(self):
        """Specialization values flow into template args via -D."""
        src = """
        template <int N>
        __device__ int mul(int x) { return x * N; }
        __global__ void k(int* out) {
            out[threadIdx.x] = mul<FACTOR>(7);
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out, defines={"FACTOR": 6})
        assert out_[0] == 42

    def test_runtime_template_arg_rejected(self):
        src = """
        template <int N>
        __device__ int f(int x) { return x + N; }
        __global__ void k(int* out, int n) {
            out[0] = f<n>(1);
        }
        """
        with pytest.raises(CompileError, match="compile-time constant"):
            nvcc(src)

    def test_wrong_template_arity_rejected(self):
        src = """
        template <int A, int B>
        __device__ int f(int x) { return x + A + B; }
        __global__ void k(int* out) { out[0] = f<1>(0); }
        """
        with pytest.raises(CompileError, match="template arguments"):
            nvcc(src)

    def test_typename_param_rejected_clearly(self):
        src = """
        template <typename T>
        __device__ T ident(T x) { return x; }
        __global__ void k(int* out) { out[0] = ident<1>(1); }
        """
        with pytest.raises(CompileError, match="typename"):
            nvcc(src)

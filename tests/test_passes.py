"""Unit and property tests for the IR optimization passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernelc import nvcc
from repro.kernelc import typesys as T
from repro.kernelc.ir import Imm, Instr, Reg
from repro.kernelc.passes.constfold import fold_instr, fold_mul24
from tests.helpers import run_kernel

rng = np.random.default_rng(5)

ints = st.integers(-(2**31), 2**31 - 1)


class TestFoldInstr:
    def _imm(self, v, t=T.S32):
        return Imm(T.convert_const(v, t), t)

    @settings(max_examples=200)
    @given(a=ints, b=ints,
           op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]))
    def test_fold_matches_numpy_wraparound(self, a, b, op):
        instr = Instr(op, T.S32, Reg("r1", T.S32),
                      [self._imm(a), self._imm(b)])
        folded = fold_instr(instr)
        fn = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
              "and": np.bitwise_and, "or": np.bitwise_or,
              "xor": np.bitwise_xor}[op]
        with np.errstate(over="ignore"):
            expected = fn(np.int32(a), np.int32(b))
        assert folded is not None
        assert folded.value == int(expected)

    @settings(max_examples=100)
    @given(a=ints, b=ints.filter(lambda v: v != 0))
    def test_fold_division_truncates(self, a, b):
        instr = Instr("div", T.S32, Reg("r1", T.S32),
                      [self._imm(a), self._imm(b)])
        folded = fold_instr(instr)
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert folded.value == T.convert_const(expected, T.S32)

    @given(a=ints)
    def test_fold_div_by_zero_stays_runtime(self, a):
        instr = Instr("div", T.S32, Reg("r1", T.S32),
                      [self._imm(a), self._imm(0)])
        assert fold_instr(instr) is None

    @settings(max_examples=100)
    @given(a=ints, b=ints)
    def test_fold_mul24_semantics(self, a, b):
        def ext24(x):
            x &= 0xFFFFFF
            return x - 0x1000000 if x & 0x800000 else x
        assert fold_mul24(a, b, T.S32) == T.convert_const(
            ext24(a) * ext24(b), T.S32)

    @settings(max_examples=100)
    @given(a=st.floats(-1e6, 1e6), b=st.floats(-1e6, 1e6))
    def test_fold_float_matches_f32(self, a, b):
        instr = Instr("add", T.F32, Reg("f1", T.F32),
                      [self._imm(a, T.F32), self._imm(b, T.F32)])
        folded = fold_instr(instr)
        assert folded.value == float(np.float32(np.float32(a)
                                                + np.float32(b)))

    def test_fold_setp(self):
        instr = Instr("setp", T.S32, Reg("p1", T.BOOL),
                      [self._imm(3), self._imm(5)], cmp="lt")
        assert fold_instr(instr).value is True

    def test_fold_selp(self):
        instr = Instr("selp", T.S32, Reg("r1", T.S32),
                      [self._imm(10), self._imm(20), Imm(False, T.BOOL)])
        assert fold_instr(instr).value == 20

    def test_no_fold_with_register_operand(self):
        instr = Instr("add", T.S32, Reg("r1", T.S32),
                      [Reg("r2", T.S32), self._imm(1)])
        assert fold_instr(instr) is None


class TestStrengthReduction:
    @settings(max_examples=30, deadline=None)
    @given(k=st.integers(0, 10), seed=st.integers(0, 1000))
    def test_unsigned_divrem_pow2_equivalence(self, k, seed):
        """Strength-reduced div/rem must be bit-exact with hardware."""
        d = 1 << k
        src = """
        __global__ void dr(const unsigned int* x, unsigned int* q,
                           unsigned int* r) {
            int i = threadIdx.x;
            q[i] = x[i] / %du;
            r[i] = x[i] %% %du;
        }
        """ % (d, d)
        local = np.random.default_rng(seed)
        x = local.integers(0, 2**32, 32, dtype=np.uint32)
        q = np.zeros(32, np.uint32)
        r = np.zeros(32, np.uint32)
        (_, q_, r_), _ = run_kernel(src, 1, 32, x, q, r)
        np.testing.assert_array_equal(q_, x // d)
        np.testing.assert_array_equal(r_, x % d)

    @settings(max_examples=30, deadline=None)
    @given(k=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_signed_div_pow2_fixup(self, k, seed):
        """The signed round-toward-zero fixup sequence must match C."""
        d = 1 << k
        src = """
        __global__ void sd(const int* x, int* q, int* r) {
            int i = threadIdx.x;
            q[i] = x[i] / %d;
            r[i] = x[i] %% %d;
        }
        """ % (d, d)
        local = np.random.default_rng(seed)
        x = local.integers(-(2**20), 2**20, 32, dtype=np.int32)
        q = np.zeros(32, np.int32)
        r = np.zeros(32, np.int32)
        (_, q_, r_), _ = run_kernel(src, 1, 32, x, q, r)
        expected_q = np.where(x >= 0, x // d, -((-x) // d))
        np.testing.assert_array_equal(q_, expected_q.astype(np.int32))
        np.testing.assert_array_equal(r_, (x - expected_q * d)
                                      .astype(np.int32))

    def test_div_pow2_emits_no_divide(self):
        src = """
        __global__ void k(const unsigned int* x, unsigned int* o) {
            o[threadIdx.x] = x[threadIdx.x] / 16u;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "div" not in ptx and "shr" in ptx

    def test_non_pow2_divide_becomes_mulhi(self):
        """Non-power-of-two constants take the magic-number path."""
        src = """
        __global__ void k(const unsigned int* x, unsigned int* o) {
            o[threadIdx.x] = x[threadIdx.x] / 7u;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "div" not in ptx and "mulhi" in ptx

    def test_non_pow2_divide_survives_at_o1(self):
        """Magic division is an -O2 optimization; -O1 keeps the div."""
        src = """
        __global__ void k(const unsigned int* x, unsigned int* o) {
            o[threadIdx.x] = x[threadIdx.x] / 7u;
        }
        """
        assert "div" in nvcc(src, opt_level=1).kernel("k").to_ptx()

    def test_float_div_pow2_becomes_mul(self):
        src = """
        __global__ void k(const float* x, float* o) {
            o[threadIdx.x] = x[threadIdx.x] / 8.0f;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "div" not in ptx and "mul" in ptx

    def test_mul_pow2_becomes_shift(self):
        src = """
        __global__ void k(const int* x, int* o) {
            o[threadIdx.x] = x[threadIdx.x] * 32;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "shl" in ptx


class TestUnrolling:
    def test_constant_trip_count_unrolls(self):
        src = """
        __global__ void k(const float* x, float* o) {
            float acc = 0.0f;
            for (int i = 0; i < 8; i++) acc += x[i];
            o[threadIdx.x] = acc;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "bra" not in ptx

    def test_runtime_trip_count_stays_rolled(self):
        src = """
        __global__ void k(const float* x, float* o, int n) {
            float acc = 0.0f;
            for (int i = 0; i < n; i++) acc += x[i];
            o[threadIdx.x] = acc;
        }
        """
        assert "bra" in nvcc(src).kernel("k").to_ptx()

    def test_pragma_unroll_budget(self):
        """'#pragma unroll 1' disables unrolling of a constant loop."""
        src = """
        __global__ void k(const float* x, float* o) {
            float acc = 0.0f;
            #pragma unroll 1
            for (int i = 0; i < 8; i++) acc += x[i];
            o[threadIdx.x] = acc;
        }
        """
        # trip count 8 > budget 1 -> stays a loop
        assert "bra" in nvcc(src).kernel("k").to_ptx()

    def test_loop_with_break_not_unrolled_but_correct(self):
        src = """
        __global__ void k(const int* x, int* o) {
            int acc = 0;
            for (int i = 0; i < 8; i++) {
                if (x[i] == 0) break;
                acc += x[i];
            }
            o[threadIdx.x] = acc;
        }
        """
        x = np.array([1, 2, 3, 0, 9, 9, 9, 9], dtype=np.int32)
        o = np.zeros(1, np.int32)
        (_, o_), _ = run_kernel(src, 1, 1, x, o)
        assert o_[0] == 6

    def test_downward_loop_unrolls(self):
        src = """
        __global__ void k(int* o) {
            int acc = 0;
            for (int i = 8; i > 0; i--) acc += i;
            o[threadIdx.x] = acc;
        }
        """
        mod = nvcc(src)
        assert "bra" not in mod.kernel("k").to_ptx()
        o = np.zeros(1, np.int32)
        (o_,), _ = run_kernel(src, 1, 1, o)
        assert o_[0] == 36

    def test_const_local_bound_unrolls(self):
        """const int n = MACRO*2; for(i<n) — folds through const locals."""
        src = """
        __global__ void k(const float* x, float* o) {
            const int n = 3 * 2;
            float acc = 0.0f;
            for (int i = 0; i < n; i++) acc += x[i];
            o[threadIdx.x] = acc;
        }
        """
        assert "bra" not in nvcc(src).kernel("k").to_ptx()

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(0, 30), seed=st.integers(0, 100))
    def test_unrolled_equals_rolled(self, n, seed):
        """Property: unrolling never changes results."""
        src_template = """
        __global__ void k(const float* x, float* o) {
            float acc = 0.0f;
            for (int i = 0; i < %s; i++) acc += x[i] * (float)(i + 1);
            o[threadIdx.x] = acc;
        }
        """
        local = np.random.default_rng(seed)
        x = local.random(max(n, 1)).astype(np.float32)
        o1 = np.zeros(1, np.float32)
        o2 = np.zeros(1, np.float32)
        (_, r1), _ = run_kernel(src_template % n, 1, 1, x, o1)
        # force rolled via a runtime bound
        src_rt = src_template % "nn"
        src_rt = src_rt.replace("float* o)", "float* o, int nn)")
        (_, r2), _ = run_kernel(src_rt, 1, 1, x, o2, n)
        np.testing.assert_array_equal(r1, r2)


class TestDCEAndRegisters:
    def test_dead_code_removed(self):
        src = """
        __global__ void k(const float* x, float* o) {
            float unused = x[0] * 3.0f + 7.0f;
            float kept = x[1];
            o[threadIdx.x] = kept;
        }
        """
        mod = nvcc(src)
        # Only one global load should remain.
        loads = [i for i in mod.kernel("k").ir.instructions()
                 if i.op == "ld" and i.space == "global"]
        assert len(loads) == 1

    def test_cse_shares_address_math(self):
        src = """
        __global__ void k(const float* x, float* o, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            o[i] = x[i] + x[i];
        }
        """
        kernel = nvcc(src).kernel("k")
        loads = [i for i in kernel.ir.instructions()
                 if i.op == "ld" and i.space == "global"]
        # x[i] twice: CSE shares the address; both loads remain (memory
        # ops are not merged) but address math is computed once.
        adds64 = [i for i in kernel.ir.instructions()
                  if i.op == "add" and i.dtype.bits == 64]
        assert len(adds64) <= 2  # one per distinct base pointer

    def test_unreachable_branch_removed(self):
        src = """
        __global__ void k(float* o) {
            if (0) { o[0] = 1.0f; }
            else { o[1] = 2.0f; }
        }
        """
        kernel = nvcc(src).kernel("k")
        stores = [i for i in kernel.ir.instructions() if i.op == "st"]
        assert len(stores) == 1

    def test_register_count_grows_with_blocking(self):
        src = """
        __global__ void k(const float* x, float* o, int n) {
            float acc[RB];
            for (int r = 0; r < RB; r++) acc[r] = 0.0f;
            for (int i = 0; i < n; i++)
                for (int r = 0; r < RB; r++)
                    acc[r] += x[i * RB + r];
            for (int r = 0; r < RB; r++) o[r] = acc[r];
        }
        """
        regs = [nvcc(src, defines={"RB": rb}).kernel("k").reg_count
                for rb in (2, 4, 8, 16)]
        assert regs == sorted(regs)
        assert regs[-1] - regs[0] >= 10

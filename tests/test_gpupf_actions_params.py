"""GPU-PF parameter types and action coverage (Tables 4.1/4.4)."""

import numpy as np
import pytest

from repro.gpupf import KernelCache, Pipeline
from repro.gpupf.actions import PCIE_BANDWIDTH, PCIE_LATENCY
from repro.gpupf.params import (ArrayTraits, IntParam, MemoryExtent,
                                PairParam, Schedule, TripletParam,
                                TypeParam)
from repro.gpusim import GPU, TESLA_C2070


@pytest.fixture
def gpu():
    return GPU(TESLA_C2070)


class TestParameterTypes:
    def test_triplet_coercion_and_elements(self):
        t = TripletParam("t")
        t.set(64)
        assert t.value == (64, 1, 1)
        t.set((4, 5))
        assert t.value == (4, 5, 1)
        assert t.count == 20
        x = t.element(1)
        assert x.value == 5
        t.set((4, 9))
        assert x.value == 9  # derived parameter tracks its source

    def test_pair_param(self):
        p = PairParam("p")
        p.set([3, 4])
        assert p.value == (3, 4)
        assert p.element(0).value == 3

    def test_type_param(self):
        t = TypeParam("t")
        t.set("float64")
        assert t.itemsize == 8

    def test_memory_extent_math(self):
        e = MemoryExtent("e", (4, 8), 4)
        assert e.count == 32
        assert e.nbytes == 128
        e.set(((2, 2, 2), 8))
        assert e.nbytes == 64

    def test_array_traits_validation(self):
        with pytest.raises(ValueError):
            ArrayTraits("t", filter="cubic")
        with pytest.raises(ValueError):
            ArrayTraits("t", address="mirror")
        t = ArrayTraits("t", filter="linear", address="wrap")
        assert t.value["filter"] == "linear"

    def test_version_bumps_only_on_change(self):
        p = IntParam("n", 5)
        v = p.version
        p.set(5)
        assert p.version == v
        p.set(6)
        assert p.version == v + 1

    def test_derived_param_cannot_be_set(self):
        a = IntParam("a", 2)
        d = IntParam("d").derive_from([a], lambda x: x * 10)
        assert d.value == 20
        with pytest.raises(ValueError):
            d.set(5)


class TestActions:
    def test_device_to_device_copy(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        ext = pipe.extent_param("e", (64,), 4)
        h_in = pipe.host_memory("h_in", ext)
        h_out = pipe.host_memory("h_out", ext)
        d_a = pipe.global_memory("d_a", ext)
        d_b = pipe.global_memory("d_b", ext)
        pipe.copy("up", h_in, d_a)
        pipe.copy("d2d", d_a, d_b)
        pipe.copy("down", d_b, h_out)
        pipe.refresh()
        data = np.random.default_rng(0).random(64).astype(np.float32)
        pipe.resources["h_in"].array[:] = data
        pipe.run(1)
        np.testing.assert_array_equal(pipe.resources["h_out"].array,
                                      data)

    def test_host_to_host_copy(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        ext = pipe.extent_param("e", (16,), 4)
        a = pipe.host_memory("a", ext)
        b = pipe.host_memory("b", ext)
        pipe.copy("c", a, b)
        pipe.refresh()
        pipe.resources["a"].array[:] = 7.0
        pipe.run(1)
        np.testing.assert_array_equal(pipe.resources["b"].array, 7.0)

    def test_pcie_transfer_time_model(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        ext = pipe.extent_param("e", (1024 * 1024,), 4)
        h = pipe.host_memory("h", ext)
        d = pipe.global_memory("d", ext)
        copy = pipe.copy("up", h, d)
        pipe.refresh()
        seconds = copy.run(0)
        expected = PCIE_LATENCY + ext.nbytes / PCIE_BANDWIDTH
        assert seconds == pytest.approx(expected)

    def test_user_function_sees_pipeline_and_iteration(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        seen = []
        pipe.user_function("probe",
                           lambda p, i: seen.append((p.name, i)))
        pipe.run(3)
        assert seen == [("pipeline", 0), ("pipeline", 1),
                        ("pipeline", 2)]

    def test_file_io_roundtrip(self, gpu, tmp_path):
        pipe = Pipeline(gpu, cache=KernelCache())
        ext = pipe.extent_param("e", (8,), 4)
        mem = pipe.host_memory("m", ext)
        out_path = str(tmp_path / "dump.npy")
        pipe.file_io("dump", mem, out_path, mode="write")
        pipe.refresh()
        pipe.resources["m"].array[:] = np.arange(8, dtype=np.float32)
        pipe.run(1)
        np.testing.assert_array_equal(np.load(out_path),
                                      np.arange(8, dtype=np.float32))
        # And read it back into a second pipeline.
        pipe2 = Pipeline(GPU(TESLA_C2070), cache=KernelCache())
        ext2 = pipe2.extent_param("e", (8,), 4)
        mem2 = pipe2.host_memory("m", ext2)
        pipe2.file_io("load", mem2, out_path, mode="read")
        pipe2.refresh()
        pipe2.run(1)
        np.testing.assert_array_equal(pipe2.resources["m"].array,
                                      np.arange(8, dtype=np.float32))

    def test_file_io_validation(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        ext = pipe.extent_param("e", (8,), 4)
        d = pipe.global_memory("d", ext)
        from repro.gpupf.actions import ActionError, FileIO
        with pytest.raises(ActionError, match="host"):
            FileIO("f", pipe, d, "/tmp/x.npy")
        h = pipe.host_memory("h", ext)
        with pytest.raises(ActionError, match="read/write"):
            FileIO("f2", pipe, h, "/tmp/x.npy", mode="append")

    def test_subset_reset_period(self, gpu):
        pipe = Pipeline(gpu, cache=KernelCache())
        frames = pipe.extent_param("frames", (3, 4), 4)
        window = pipe.subset_param("w", 0, 4, stride=4)
        d_all = pipe.global_memory("d", frames)
        win = pipe.subset("win", d_all, window, reset_period=2)
        pipe.refresh()
        offsets = []
        for i in range(5):
            offsets.append(win.current_offset_elems())
            win.advance(i)
        assert offsets == [0, 0, 4, 0, 4]  # resets every 2 iterations

"""Pickle round-trips for the harness run protocol (process contract).

Everything a process worker receives — :class:`ProblemSpec`,
:class:`RunRequest`, sweep-grid config dicts — must survive
``pickle.dumps``/``loads`` unchanged, and an unpickled request must
produce a bit-identical :class:`RunResult` even in a cold spawned
interpreter.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import multiprocessing as mp
import pytest

from repro.apps.backprojection import BPProblem
from repro.apps.harness import (APP_IDS, ProblemSpec, RunRequest,
                                get_harness, run_request)
from repro.apps.piv import PIVProblem
from repro.apps.template_matching import MatchProblem
from repro.faults import FaultPlan
from repro.tuning.sweep import grid_configs

# (problem, one grid point, sweep axes) per app — tiny shapes, since
# the spawn tests pay a cold interpreter import per run.
APP_CASES = {
    "piv": (
        PIVProblem("pk", 40, 40, mask=8, offs=3),
        {"rb": 2, "threads": 32},
        {"rb": [1, 2], "threads": [32, 64]},
    ),
    "template_matching": (
        MatchProblem("pk", frame_h=60, frame_w=80, tmpl_h=16,
                     tmpl_w=12, shift_h=5, shift_w=5, n_frames=1),
        {"tile": (8, 8), "threads": 32},
        {"tile": [(8, 8), (16, 8)], "threads": [32]},
    ),
    "backprojection": (
        BPProblem("pk", nx=8, ny=8, nz=6, n_proj=4, det_u=12,
                  det_v=10),
        {"block": (8, 4), "zb": 2},
        {"block": [(8, 4), (4, 4)], "zb": [1, 2]},
    ),
}

assert sorted(APP_CASES) == sorted(APP_IDS)


def _request(app: str, functional: bool = True,
             fault_plan=None) -> RunRequest:
    problem, point, _ = APP_CASES[app]
    spec = ProblemSpec(app, problem, seed=7, device="c2070",
                       memory_bytes=8 << 20)
    config = get_harness(app).sweep_config(point,
                                           functional=functional)
    return RunRequest(spec, config, fault_plan=fault_plan)


class TestRoundTrips:
    @pytest.mark.parametrize("app", sorted(APP_IDS))
    def test_problem_spec_roundtrip(self, app):
        problem, _, _ = APP_CASES[app]
        spec = ProblemSpec(app, problem, seed=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.device_spec() is spec.device_spec()

    @pytest.mark.parametrize("app", sorted(APP_IDS))
    def test_run_request_roundtrip(self, app):
        request = _request(app, fault_plan=FaultPlan(
            seed=2, rates={"memory.bitflip": 0.05}))
        clone = pickle.loads(pickle.dumps(request))
        assert clone.spec == request.spec
        assert clone.config == request.config
        assert clone.fault_plan == request.fault_plan

    @pytest.mark.parametrize("app", sorted(APP_IDS))
    def test_grid_configs_roundtrip(self, app):
        _, _, axes = APP_CASES[app]
        configs = grid_configs(**axes)
        assert pickle.loads(pickle.dumps(configs)) == configs

    @pytest.mark.parametrize("app", sorted(APP_IDS))
    def test_sweep_configs_roundtrip(self, app):
        _, _, axes = APP_CASES[app]
        harness = get_harness(app)
        for point in grid_configs(**axes):
            config = harness.sweep_config(point)
            assert pickle.loads(pickle.dumps(config)) == config

    def test_spec_validates_app_and_device(self):
        problem, _, _ = APP_CASES["piv"]
        with pytest.raises(ValueError):
            ProblemSpec("warp-drive", problem)
        with pytest.raises(ValueError):
            ProblemSpec("piv", problem, device="k80")


class TestSpawnedBitIdentical:
    """An unpickled request run in a cold interpreter matches inline."""

    @pytest.mark.parametrize("app", sorted(APP_IDS))
    def test_spawned_result_matches_inline(self, app):
        request = _request(app, functional=True)
        inline = run_request(request)
        with ProcessPoolExecutor(
                max_workers=1,
                mp_context=mp.get_context("spawn")) as pool:
            remote = pool.submit(run_request, request).result()
        assert remote.same_output(inline)
        assert remote.seconds == inline.seconds
        assert remote.transfer_seconds == inline.transfer_seconds
        assert remote.reg_count == inline.reg_count
        assert remote.occupancy == inline.occupancy
        assert remote.counters == inline.counters

    def test_spawned_fault_summary_matches_inline(self):
        # The plan ships; the worker rebuilds its injector and fires
        # the same seeded faults the inline run fires.  Template
        # matching compiles through the pipeline's retry budget, so
        # one compile fault is absorbed and shows up in the summary.
        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        request = _request("template_matching", functional=True,
                           fault_plan=plan)
        inline = run_request(request)
        with ProcessPoolExecutor(
                max_workers=1,
                mp_context=mp.get_context("spawn")) as pool:
            remote = pool.submit(run_request, request).result()
        assert inline.faults and remote.faults == inline.faults
        assert remote.same_output(inline)

    def test_spawned_fault_failure_matches_inline(self):
        # PIV compiles its kernel outside any retry wrapper, so the
        # same plan is a typed failure — identically, in both places.
        from repro.faults import FaultError

        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        request = _request("piv", functional=True, fault_plan=plan)
        with pytest.raises(FaultError) as inline_err:
            run_request(request)
        with ProcessPoolExecutor(
                max_workers=1,
                mp_context=mp.get_context("spawn")) as pool:
            with pytest.raises(FaultError) as remote_err:
                pool.submit(run_request, request).result()
        assert type(remote_err.value) is type(inline_err.value)
        assert str(remote_err.value) == str(inline_err.value)
        assert remote_err.value.site == inline_err.value.site

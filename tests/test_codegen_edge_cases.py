"""Codegen edge cases: operators, scoping, and diagnostics."""

import numpy as np
import pytest

from repro.kernelc import CompileError, nvcc
from tests.helpers import run_kernel

rng = np.random.default_rng(21)


class TestOperators:
    def test_postfix_increment_value(self):
        src = """
        __global__ void k(int* out) {
            int i = 5;
            out[0] = i++;
            out[1] = i;
            out[2] = ++i;
            out[3] = i--;
            out[4] = --i;
        }
        """
        out = np.zeros(5, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        np.testing.assert_array_equal(out_, [5, 6, 7, 7, 5])

    def test_comma_operator(self):
        src = """
        __global__ void k(int* out) {
            int a = 0, b = 0;
            out[0] = (a = 3, b = 4, a + b);
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        assert out_[0] == 7

    def test_nested_ternary(self):
        src = """
        __global__ void k(const int* x, int* out, int n) {
            int i = threadIdx.x;
            if (i < n)
                out[i] = x[i] > 10 ? 2 : x[i] > 5 ? 1 : 0;
        }
        """
        x = np.array([3, 7, 15, 5, 11], dtype=np.int32)
        out = np.zeros(5, np.int32)
        (_, out_), _ = run_kernel(src, 1, 8, x, out, 5)
        np.testing.assert_array_equal(out_, [0, 1, 2, 0, 2])

    def test_ternary_with_side_effects(self):
        """Non-pure arms must lower through control flow, not selp."""
        src = """
        __global__ void k(int* out, int flag) {
            int a = 0;
            int v = flag ? (a = 10, a + 1) : (a = 20, a + 2);
            out[0] = v;
            out[1] = a;
        }
        """
        out = np.zeros(2, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out, 1)
        np.testing.assert_array_equal(out_, [11, 10])
        out = np.zeros(2, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out, 0)
        np.testing.assert_array_equal(out_, [22, 20])

    def test_compound_assignment_through_memory(self):
        src = """
        __global__ void k(int* out) {
            out[threadIdx.x] = 10;
            out[threadIdx.x] += 5;
            out[threadIdx.x] *= 2;
            out[threadIdx.x] >>= 1;
        }
        """
        out = np.zeros(4, np.int32)
        (out_,), _ = run_kernel(src, 1, 4, out)
        np.testing.assert_array_equal(out_, [15, 15, 15, 15])

    def test_pointer_difference(self):
        src = """
        __global__ void k(const float* a, int* out, int n) {
            const float* p = a + n;
            out[0] = (int)(p - a);
        }
        """
        out = np.zeros(1, np.int32)
        (_, out_), _ = run_kernel(src, 1, 1,
                                  np.zeros(16, np.float32), out, 7)
        assert out_[0] == 7

    def test_address_of_array_element(self):
        src = """
        __global__ void k(float* out, int n) {
            float* p = &out[n];
            *p = 42.0f;
        }
        """
        out = np.zeros(8, np.float32)
        (out_,), _ = run_kernel(src, 1, 1, out, 3)
        assert out_[3] == 42.0

    def test_unsigned_comparison_semantics(self):
        """(unsigned)-1 must compare greater than 1."""
        src = """
        __global__ void k(int* out) {
            unsigned int big = (unsigned int)(-1);
            out[0] = big > 1u ? 1 : 0;
            int sbig = -1;
            out[1] = sbig > 1 ? 1 : 0;
        }
        """
        out = np.zeros(2, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        np.testing.assert_array_equal(out_, [1, 0])


class TestScoping:
    def test_shadowing_in_nested_blocks(self):
        src = """
        __global__ void k(int* out) {
            int x = 1;
            { int x = 2; out[0] = x; }
            out[1] = x;
        }
        """
        out = np.zeros(2, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        np.testing.assert_array_equal(out_, [2, 1])

    def test_loop_variable_scoped_to_loop(self):
        src = """
        __global__ void k(int* out) {
            int i = 99;
            for (int i = 0; i < 3; i++) { }
            out[0] = i;
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        assert out_[0] == 99

    def test_assigning_to_parameter(self):
        src = """
        __global__ void k(int* out, int n) {
            n = n * 2;
            out[0] = n;
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out, 21)
        assert out_[0] == 42

    def test_two_kernels_in_one_module(self):
        src = """
        __global__ void a(int* out) { out[0] = 1; }
        __global__ void b(int* out) { out[0] = 2; }
        """
        mod = nvcc(src)
        assert set(mod.kernels) == {"a", "b"}

    def test_shared_array_name_reuse_across_scopes(self):
        src = """
        __global__ void k(float* out) {
            { __shared__ float buf[4]; buf[0] = 1.0f;
              __syncthreads(); out[0] = buf[0]; }
            { __shared__ float buf[4]; buf[0] = 2.0f;
              __syncthreads(); out[1] = buf[0]; }
        }
        """
        out = np.zeros(2, np.float32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        np.testing.assert_array_equal(out_, [1.0, 2.0])


class TestDiagnostics:
    def test_unknown_identifier_mentions_specialization(self):
        src = "__global__ void k(float* o) { o[0] = (float)MISSING; }"
        with pytest.raises(CompileError, match="specialization"):
            nvcc(src)

    def test_dynamic_shared_size_rejected_helpfully(self):
        src = """
        __global__ void k(float* o, int n) {
            __shared__ float buf[n];
            o[0] = buf[0];
        }
        """
        with pytest.raises(CompileError, match="compile-time"):
            nvcc(src)

    def test_break_outside_loop(self):
        src = "__global__ void k(float* o) { break; }"
        with pytest.raises(CompileError, match="break"):
            nvcc(src)

    def test_kernel_returning_value(self):
        src = "__global__ void k(float* o) { return 1; }"
        with pytest.raises(CompileError, match="void"):
            nvcc(src)

    def test_assign_to_const_constant(self):
        src = """
        __global__ void k(float* o) {
            const int n = 4;
            n = 5;
            o[0] = (float)n;
        }
        """
        with pytest.raises(CompileError, match="constant"):
            nvcc(src)

    def test_constant_recursion_folds(self):
        """Recursion over compile-time constants converges by folding
        (the constexpr-like corollary of force-inlining)."""
        src = """
        __device__ int fact(int n) {
            return n <= 1 ? 1 : n * fact(n - 1);
        }
        __global__ void k(int* o) { o[0] = fact(5); }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        assert out_[0] == 120

    def test_runtime_recursion_rejected(self):
        src = """
        __device__ int fact(int n) {
            return n <= 1 ? 1 : n * fact(n - 1);
        }
        __global__ void k(int* o, int n) { o[0] = fact(n); }
        """
        with pytest.raises(CompileError, match="recursion|deep"):
            nvcc(src)

    def test_unknown_kernel_name(self):
        mod = nvcc("__global__ void k(float* o) { o[0] = 1.0f; }")
        with pytest.raises(CompileError, match="available"):
            mod.kernel("nope")

"""DeviceFleet: sharding, placement, reports, and the merge contract.

The fleet's core promise is *result transparency*: sharding a workload
across N members — any backend, any placement — merges to exactly the
records/results a single-device sequential run produces.  Placement
policies only decide where work runs; typed errors
(:class:`FleetPlacementError`, :class:`FleetWorkerError`) cover the
ways that can fail.  Worker-death chaos lives in
``tests/test_faults_chaos.py``.
"""

import time

import pytest

from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.piv import PIVConfig, PIVProblem
from repro.faults.errors import DeadlineExceeded
from repro.runtime import (DeviceFleet, FleetError, FleetPlacementError,
                           FleetWorkerError)
from repro.tuning.app_sweeps import HarnessRunner, harness_sweep
from repro.tuning.sweep import Sweeper, grid_configs

PROBLEM = PIVProblem("fleet", 40, 40, mask=8, offs=3)
AXES = dict(rb=[1, 2], threads=[32, 64])


def piv_spec(device="c2070", seed=3):
    return ProblemSpec(app="piv", problem=PROBLEM, seed=seed,
                       device=device, memory_bytes=8 << 20)


def piv_request(device="c2070", seed=3, **kw):
    return RunRequest(spec=piv_spec(device, seed),
                      config=PIVConfig(rb=2, threads=32,
                                       functional=True), **kw)


def comparable(records):
    return [(r.index, r.key(), r.seconds, r.reg_count, r.occupancy,
             r.valid, r.error) for r in records]


# ---------------------------------------------------------------------
# Construction and placement.
# ---------------------------------------------------------------------

class TestPlacement:
    def test_members_are_labeled_per_ordinal(self):
        with DeviceFleet(["c2070", "c2070", "k20"],
                         pool="inline") as fleet:
            assert [m.key for m in fleet.members] \
                == ["c2070:0", "c2070:1", "k20:2"]

    def test_unknown_device_rejected(self):
        with pytest.raises(FleetPlacementError):
            DeviceFleet(["gtx480"], pool="inline")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            DeviceFleet([], pool="inline")

    def test_bad_pool_and_placement_rejected(self):
        with pytest.raises(ValueError):
            DeviceFleet(["c2070"], pool="mpi")
        with pytest.raises(ValueError):
            DeviceFleet(["c2070"], placement="random")

    def test_eligibility_is_by_device_model(self):
        with DeviceFleet(["c1060", "c2070", "c1060"],
                         pool="inline") as fleet:
            assert [m.key for m in fleet.eligible("c1060")] \
                == ["c1060:0", "c1060:2"]
            assert fleet.eligible("k20") == []
            with pytest.raises(FleetPlacementError):
                fleet.place("k20")

    def test_least_loaded_stripes(self):
        with DeviceFleet(["c2070"] * 3, pool="inline") as fleet:
            picks = []
            for _ in range(6):
                member = fleet.place("c2070")
                member.dispatched += 1
                picks.append(member.ordinal)
            assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_stripes(self):
        with DeviceFleet(["c2070"] * 2, pool="inline",
                         placement="round-robin") as fleet:
            picks = [fleet.place("c2070").ordinal for _ in range(4)]
            assert picks == [0, 1, 0, 1]

    def test_affinity_is_deterministic_and_sticky(self):
        with DeviceFleet(["c2070"] * 4, pool="inline",
                         placement="affinity") as fleet:
            a = fleet.place("c2070", affinity_key=("piv", 3))
            b = fleet.place("c2070", affinity_key=("piv", 3))
            assert a is b  # identical work pins to one member
        # and the pick survives fleet reconstruction (stable hash)
        with DeviceFleet(["c2070"] * 4, pool="inline",
                         placement="affinity") as fleet2:
            c = fleet2.place("c2070", affinity_key=("piv", 3))
            assert c.ordinal == a.ordinal

    def test_shutdown_fleet_refuses_work(self):
        fleet = DeviceFleet(["c2070"], pool="inline")
        fleet.shutdown()
        with pytest.raises(FleetError):
            fleet.run_requests([piv_request()])


# ---------------------------------------------------------------------
# Request-stream sharding.
# ---------------------------------------------------------------------

class TestRunRequests:
    @pytest.fixture(scope="class")
    def sequential(self):
        return [run_request(piv_request(seed=s)) for s in range(4)]

    @pytest.mark.parametrize("pool", ["inline", "thread"])
    def test_homogeneous_merge_bit_identical(self, pool, sequential):
        reqs = [piv_request(seed=s) for s in range(4)]
        with DeviceFleet(["c2070"] * 2, pool=pool) as fleet:
            merged = fleet.run_requests(reqs)
            for solo, sharded in zip(sequential, merged):
                assert sharded.same_output(solo)
                assert sharded.seconds == solo.seconds
                assert sharded.reg_count == solo.reg_count
            # both members actually worked
            assert all(m.completed == 2 for m in fleet.members)

    def test_results_carry_member_attribution(self):
        with DeviceFleet(["c2070"] * 2, pool="inline") as fleet:
            merged = fleet.run_requests(
                [piv_request(seed=s) for s in range(4)])
            assert [r.worker for r in merged] \
                == ["c2070:0", "c2070:1", "c2070:0", "c2070:1"]

    def test_heterogeneous_requests_route_by_device(self):
        reqs = [piv_request(device=d)
                for d in ("k20", "c2070", "c1060", "k20")]
        solo = {d: run_request(piv_request(device=d))
                for d in ("c1060", "c2070", "k20")}
        with DeviceFleet(["c1060", "c2070", "k20"],
                         pool="inline") as fleet:
            merged = fleet.run_requests(reqs)
            for req, res in zip(reqs, merged):
                assert res.worker.startswith(req.spec.device + ":")
                assert res.same_output(solo[req.spec.device])

    def test_missing_device_is_typed(self):
        with DeviceFleet(["c1060"], pool="inline") as fleet:
            with pytest.raises(FleetPlacementError):
                fleet.run_requests([piv_request(device="k20")])

    def test_warm_thread_members_hit_caches(self):
        reqs = [piv_request(seed=3) for _ in range(3)]
        with DeviceFleet(["c2070"], pool="thread") as fleet:
            merged = fleet.run_requests(reqs)
            assert merged[0].same_output(merged[2])
            report = fleet.cache_report()
            assert report["plan_misses"] == 1
            assert report["plan_hits"] == 2

    def test_request_error_is_raised_at_its_position(self):
        bad = piv_request(seed=9, deadline=time.monotonic() - 1.0)
        with DeviceFleet(["c2070"], pool="inline") as fleet:
            with pytest.raises(DeadlineExceeded):
                fleet.run_requests([piv_request(), bad])

    def test_return_errors_keeps_good_results(self):
        bad = piv_request(seed=9, deadline=time.monotonic() - 1.0)
        with DeviceFleet(["c2070"], pool="inline") as fleet:
            out = fleet.run_requests([piv_request(), bad],
                                     return_errors=True)
            assert out[0].same_output(run_request(piv_request()))
            assert isinstance(out[1], DeadlineExceeded)
            health = fleet.health_report()
            assert health["status"] == "degraded"
            assert health["metrics"]["counters"]["fleet.errors"] == 1


# ---------------------------------------------------------------------
# Grid sharding and the Sweeper/harness wiring.
# ---------------------------------------------------------------------

class TestGridSharding:
    @pytest.fixture(scope="class")
    def baseline(self):
        return harness_sweep("piv", PROBLEM, AXES, device="c2070",
                             memory_bytes=8 << 20)

    @pytest.mark.parametrize("pool", ["inline", "thread"])
    @pytest.mark.parametrize("placement",
                             ["least-loaded", "round-robin", "affinity"])
    def test_fleet_sweep_bit_identical(self, pool, placement, baseline):
        with DeviceFleet(["c2070"] * 2, pool=pool,
                         placement=placement) as fleet:
            sweeper = harness_sweep("piv", PROBLEM, AXES,
                                    device="c2070",
                                    memory_bytes=8 << 20, fleet=fleet)
            assert comparable(sweeper.records) \
                == comparable(baseline.records)

    def test_process_backend_bit_identical(self, baseline):
        with DeviceFleet(["c2070"] * 2, pool="process") as fleet:
            sweeper = harness_sweep("piv", PROBLEM, AXES,
                                    device="c2070",
                                    memory_bytes=8 << 20, fleet=fleet)
            assert comparable(sweeper.records) \
                == comparable(baseline.records)

    def test_sweeper_accounting_sees_fleet_cells(self, baseline):
        with DeviceFleet(["c2070"] * 2, pool="inline") as fleet:
            runner = HarnessRunner("piv", piv_spec())
            sweeper = Sweeper(runner, fleet=fleet)
            sweeper.sweep(grid_configs(**AXES))
            assert sweeper.metrics.snapshot()["counters"][
                "sweep.cells"] == 4
            # per-cell counters rode the records into cache_report
            assert sweeper.cache_report["plan_misses"] == 4

    def test_grid_rejects_unservable_device(self):
        with DeviceFleet(["c1060"], pool="inline") as fleet:
            with pytest.raises(FleetPlacementError):
                harness_sweep("piv", PROBLEM, AXES, device="k20",
                              memory_bytes=8 << 20, fleet=fleet)

    def test_invalid_cells_stay_typed_records(self):
        def explode(config):
            raise ValueError(f"cell {config['cell']} refused")

        with DeviceFleet(["c2070"] * 2, pool="inline") as fleet:
            records = fleet.map_grid(explode, [{"cell": 0}, {"cell": 1}])
            assert all(not r.valid for r in records)
            assert all("ValueError" in r.error for r in records)


# ---------------------------------------------------------------------
# Fleet-level reports.
# ---------------------------------------------------------------------

class TestReports:
    def test_health_report_shape(self):
        with DeviceFleet(["c1060", "k20"], pool="inline",
                         placement="round-robin") as fleet:
            fleet.run_requests([piv_request(device="c1060"),
                                piv_request(device="k20")])
            health = fleet.health_report()
            assert health["status"] == "ok"
        assert fleet.health_report()["status"] == "shutdown"
        assert health["devices"] == ["c1060", "k20"]
        assert health["placement"] == "round-robin"
        rows = {row["member"]: row for row in health["members"]}
        assert rows["c1060:0"]["completed"] == 1
        assert rows["k20:1"]["completed"] == 1
        assert health["makespan_modeled_s"] > 0.0
        assert health["busy_modeled_s"] >= health["makespan_modeled_s"]

    def test_modeled_time_accounting_sums_members(self):
        reqs = [piv_request(seed=s) for s in range(4)]
        solo_total = sum(run_request(r).seconds for r in reqs)
        with DeviceFleet(["c2070"] * 2, pool="inline") as fleet:
            fleet.run_requests(reqs)
            assert fleet.busy_seconds() == pytest.approx(solo_total)
            # balanced striping: the makespan is about half the work
            assert fleet.makespan_seconds() < solo_total

    def test_metrics_namespace(self):
        with DeviceFleet(["c2070"], pool="inline") as fleet:
            fleet.run_requests([piv_request()])
            counters = fleet.metrics.snapshot()["counters"]
            assert counters["fleet.dispatch"] == 1
            assert counters["fleet.batches"] == 1
            gauges = fleet.metrics.snapshot()["gauges"]
            assert gauges["fleet.members"] == 1

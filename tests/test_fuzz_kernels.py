"""Seeded random-kernel differential fuzzing: batched ≡ serial.

:mod:`tests.test_fuzz_expressions` fuzzes straight-line arithmetic;
this suite fuzzes whole kernels in the Csmith style — loops with
data-dependent trip counts, divergent branches, shared round-trips
through barriers, global loads with random strides and alignments, and
atomics — and demands the batched engine reproduce the serial oracle's
device memory, per-warp stats, and cycle counts on both device
generations.

Generation is seeded and fully deterministic, so any failure is
reproducible from its test id alone.

Two documented engine semantics bound what the generator may emit:
cross-block ordering is only defined *within* one warp-instruction, so
at most one float-atomic statement targets the accumulator buffer; and
the engines interleave warps of multi-warp blocks differently, so
order-sensitive float atomics are only generated for 32-thread blocks.
Integer atomics are exact under any ordering and are unrestricted.
"""

import numpy as np
import pytest

from tests.helpers import assert_same_launch

SIG = ("__global__ void k(float* out, float* acc, int* ihist,\n"
       "                  const float* in, const int* idx, int n)")


def _gen_kernel(rng):
    """One random kernel + its launch shape, drawn from *rng*."""
    threads = int(rng.choice([32, 48, 64, 128]))
    blocks = int(rng.integers(3, 8))
    total = blocks * threads
    n = total - int(rng.integers(0, threads))  # ragged tail
    bins = int(rng.choice([1, 4, 16]))
    use_shared = bool(rng.random() < 0.5)
    # An early return would leave lanes exited at __syncthreads().
    guard = (not use_shared) and bool(rng.random() < 0.5)
    body = ["    int tid = threadIdx.x;",
            "    int gid = blockIdx.x * blockDim.x + tid;"]
    if guard:
        body.append("    if (gid >= n) return;")
    body.append("    float v = in[gid % n];")
    kinds = ["load", "loop", "branch", "iatomic"]
    if use_shared:
        kinds.append("shared")
    if threads == 32:
        kinds.append("fatomic")
    emitted = set()
    for _ in range(int(rng.integers(2, 5))):
        kind = str(rng.choice(kinds))
        if kind == "load":
            stride = int(rng.choice([1, 2, 3, 4, 32]))
            align = int(rng.integers(0, 8))
            body.append(
                f"    v += in[(gid * {stride} + {align}) % n];")
        elif kind == "loop":
            trip = int(rng.choice([3, 5, 7, 11]))
            body.append(
                f"    for (int i = 0; i < gid % {trip}; ++i)\n"
                f"        v += 0.25f * i + in[(gid + i) % n];")
        elif kind == "branch":
            mod = int(rng.choice([2, 3, 5]))
            arm = int(rng.integers(0, mod))
            body.append(f"    if (gid % {mod} == {arm}) v = -v;\n"
                        f"    else v += 1.0f;")
        elif kind == "iatomic":
            body.append(
                f"    atomicAdd(&ihist[idx[gid % n] % {bins}], 1);")
        elif kind == "shared" and "shared" not in emitted:
            emitted.add("shared")
            stride = int(rng.choice([1, 2, 3, 17]))
            align = int(rng.integers(0, 8))
            body.append(
                "    buf[tid] = v;\n"
                "    __syncthreads();\n"
                f"    v += buf[(tid * {stride} + {align}) "
                f"% {threads}];\n"
                "    __syncthreads();")
        elif kind == "fatomic" and "fatomic" not in emitted:
            emitted.add("fatomic")
            body.append(
                f"    atomicAdd(&acc[idx[gid % n] % {bins}], v);")
    body.append("    out[gid] = v;")
    decls = ([f"    __shared__ float buf[{threads}];"]
             if use_shared else [])
    src = SIG + " {\n" + "\n".join(decls + body) + "\n}\n"
    return src, blocks, threads, n, bins


@pytest.mark.parametrize("arch", ["sm_13", "sm_20"])
@pytest.mark.parametrize("seed", range(10))
def test_random_kernel_matches_serial(seed, arch):
    src, blocks, threads, n, bins = _gen_kernel(
        np.random.default_rng(seed))
    data = np.random.default_rng(10_000 + seed)
    total = blocks * threads
    inp = data.standard_normal(total).astype(np.float32)
    idx = data.integers(0, 1000, total).astype(np.int32)
    out = np.zeros(total, np.float32)
    acc = np.zeros(bins, np.float32)
    ihist = np.zeros(bins, np.int32)
    assert_same_launch(src, (blocks,), (threads,), out, acc, ihist,
                       inp, idx, scalars=(n,), arch=arch)


@pytest.mark.parametrize("seed", range(4))
def test_random_kernel_sampled_launch_matches(seed):
    # Same fuzz grammar, but functional=False: the sampled picks and
    # gang batching of representative blocks must agree too.
    src, blocks, threads, n, bins = _gen_kernel(
        np.random.default_rng(100 + seed))
    data = np.random.default_rng(20_000 + seed)
    total = blocks * threads
    inp = data.standard_normal(total).astype(np.float32)
    idx = data.integers(0, 1000, total).astype(np.int32)
    out = np.zeros(total, np.float32)
    acc = np.zeros(bins, np.float32)
    ihist = np.zeros(bins, np.int32)
    assert_same_launch(src, (blocks,), (threads,), out, acc, ihist,
                       inp, idx, scalars=(n,), functional=False,
                       sample_blocks=3)

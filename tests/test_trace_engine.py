"""Trace-JIT engine ≡ interpreter: identity, caching, and fallbacks.

The traced engine's contract extends the batched one: for any launch,
device memory, per-warp stats, and Timing must equal the serial
oracle's — recording, replay, guard deopts, replay splits, and
continuation chains included.  These tests also pin the plumbing the
tentpole added around the JIT: engine-name validation, the
``REPRO_ENGINE`` upgrade, per-launch trace counters, trace-cache reuse
across sweep pools, the fault-injection opt-out, and the
per-allocation dirty-tracking epochs that replaced whole-heap
snapshots in launch retries.
"""

import numpy as np
import pytest

from tests.helpers import KernelHarness
from repro.apps.template_matching import MatchProblem
from repro.faults import FaultPlan
from repro.gpusim import (ENGINES, TESLA_C2070, default_engine,
                          resolve_engine, set_default_engine,
                          trace_cache_stats)
from repro.gpusim.executor import SimError
from repro.gpusim.memory import GlobalMemory, MemoryError_
from repro.runtime.context import ExecutionContext, using_context
from repro.tuning.app_sweeps import harness_sweep


DIVERGENT_SRC = """
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = in[gid];
    float acc = 0.0f;
    for (int i = 0; i < gid % 7; ++i)    // data-dependent trip count
        acc += v * i;
    if (gid % 3 == 0) acc = -acc;        // divergent branch
    out[gid] = acc;
}
"""

BARRIER_SRC = """
__global__ void k(float* out, const float* in, int n) {
    __shared__ float buf[64];
    int tid = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + tid;
    buf[tid] = (gid < n) ? in[gid] : 0.0f;
    __syncthreads();
    float acc = 0.0f;
    for (int i = 0; i <= tid % 5; ++i)
        acc += buf[(tid + i) % blockDim.x];
    __syncthreads();
    if (gid < n) out[gid] = acc;
}
"""

ATOMIC_SRC = """
__global__ void k(int* hist, const int* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    atomicAdd(&hist[in[gid] & 15], 1);
}
"""

SIGN_SRC = """
__global__ void k(float* out, const float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = in[gid];
    if (v > 0.0f)                        // data-dependent guard
        out[gid] = v * 2.0f;
    else
        out[gid] = v - 1.0f;
}
"""


def _run(src, grid, block, arrays, scalars, engine, launches=1):
    """Launch *launches* times inside a private context."""
    with using_context(ExecutionContext(device=TESLA_C2070)):
        h = KernelHarness(src)
        outs = results = None
        for _ in range(launches):
            args = [a.copy() for a in arrays] + list(scalars)
            outs, results = h(grid, block, *args, engine=engine)
        return outs, results


def assert_traced_identical(src, grid, block, *arrays, scalars=(),
                            launches=1):
    """Serial vs traced with identical inputs; demand bit-equality."""
    out_s, res_s = _run(src, grid, block, arrays, scalars, "serial",
                        launches)
    out_t, res_t = _run(src, grid, block, arrays, scalars, "traced",
                        launches)
    for a, b in zip(out_s, out_t):
        assert a.tobytes() == b.tobytes()
    assert res_s.blocks_executed == res_t.blocks_executed
    for bs, bt in zip(res_s.stats, res_t.stats):
        assert bs.warps == bt.warps
    assert res_s.timing == res_t.timing


class TestBitIdentity:
    def test_divergent_loop(self):
        rng = np.random.default_rng(7)
        n = 500
        assert_traced_identical(
            DIVERGENT_SRC, 8, 64,
            np.zeros(n, np.float32),
            rng.standard_normal(n).astype(np.float32),
            scalars=(n,))

    def test_barrier_shared(self):
        rng = np.random.default_rng(8)
        n = 300
        assert_traced_identical(
            BARRIER_SRC, 5, 64,
            np.zeros(n, np.float32),
            rng.standard_normal(n).astype(np.float32),
            scalars=(n,))

    def test_atomics(self):
        rng = np.random.default_rng(9)
        n = 400
        assert_traced_identical(
            ATOMIC_SRC, 4, 128,
            np.zeros(16, np.int32),
            rng.integers(0, 1 << 20, n).astype(np.int32),
            scalars=(n,))

    def test_repeat_launches_identical(self):
        # Later launches replay cached traces; replay must not drift
        # from the oracle (issue-order float accumulation included).
        rng = np.random.default_rng(10)
        n = 500
        assert_traced_identical(
            DIVERGENT_SRC, 8, 64,
            np.zeros(n, np.float32),
            rng.standard_normal(n).astype(np.float32),
            scalars=(n,), launches=3)


class TestCachingAndCounters:
    def test_records_then_hits(self):
        rng = np.random.default_rng(11)
        n = 500
        arrays = (np.zeros(n, np.float32),
                  rng.standard_normal(n).astype(np.float32))
        ctx = ExecutionContext(device=TESLA_C2070)
        with using_context(ctx):
            h = KernelHarness(DIVERGENT_SRC)
            _, first = h(8, 64, *[a.copy() for a in arrays], n,
                         engine="traced")
            _, second = h(8, 64, *[a.copy() for a in arrays], n,
                          engine="traced")
        assert first.trace_records > 0
        assert second.trace_hits > 0
        assert second.trace_records == 0
        stats = trace_cache_stats(ctx)
        assert stats["records"] == first.trace_records
        assert stats["hits"] >= second.trace_hits
        assert stats["aborts"] == 0

    def test_guard_failure_deopts(self):
        # Record against all-positive data, then replay against
        # all-negative: every guard on the sign branch fails, the
        # fragments deoptimize (and chain), and the answer still
        # matches the oracle bit for bit.
        n = 500
        pos = np.arange(1, n + 1, dtype=np.float32)
        neg = -pos
        ctx = ExecutionContext(device=TESLA_C2070)
        with using_context(ctx):
            h = KernelHarness(SIGN_SRC)
            h(8, 64, np.zeros(n, np.float32), pos.copy(), n,
              engine="traced")
            out_t, second = h(8, 64, np.zeros(n, np.float32),
                              neg.copy(), n, engine="traced")
        assert second.trace_deopts > 0
        with using_context(ExecutionContext(device=TESLA_C2070)):
            out_s, _ = KernelHarness(SIGN_SRC)(
                8, 64, np.zeros(n, np.float32), neg.copy(), n,
                engine="serial")
        assert out_t[0].tobytes() == out_s[0].tobytes()

    def test_launch_profile_counters(self):
        rng = np.random.default_rng(12)
        n = 500
        arrays = (np.zeros(n, np.float32),
                  rng.standard_normal(n).astype(np.float32))
        ctx = ExecutionContext(device=TESLA_C2070)
        with using_context(ctx):
            ctx.enable_tracing("trace-test")
            h = KernelHarness(DIVERGENT_SRC)
            h(8, 64, *[a.copy() for a in arrays], n, engine="traced")
            h(8, 64, *[a.copy() for a in arrays], n, engine="traced")
            profiles = ctx.tracer.profiles
        assert len(profiles) == 2
        assert profiles[0].trace_records > 0
        assert profiles[1].trace_hits > 0


class TestEngineSelection:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(SimError, match="valid engines"):
            resolve_engine("vectorized")

    def test_context_rejects_unknown(self):
        with pytest.raises(ValueError, match="valid engines"):
            ExecutionContext(engine="turbo")

    def test_env_upgrades_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "traced")
        with using_context(ExecutionContext(engine="batched")):
            assert resolve_engine("batched") == "traced"
            assert resolve_engine(None) == "traced"
            # The oracle must stay reachable for differential runs.
            assert resolve_engine("serial") == "serial"

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp9")
        with pytest.raises(SimError, match="REPRO_ENGINE"):
            resolve_engine("batched")

    def test_env_sets_context_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "traced")
        assert ExecutionContext().engine == "traced"

    def test_set_default_engine_stores_verbatim(self, monkeypatch):
        # set_default_engine records exactly what it was told (no env
        # upgrade); the upgrade applies when launches resolve.
        monkeypatch.setenv("REPRO_ENGINE", "traced")
        with using_context(ExecutionContext(engine="serial")):
            previous = set_default_engine("batched")
            assert previous == "serial"
            assert default_engine() == "batched"
            assert resolve_engine(None) == "traced"

    def test_engines_tuple(self):
        assert ENGINES == ("serial", "batched", "traced")


class TestFaultsDisableTracing:
    def test_armed_injector_suppresses_tracing(self):
        # With any injector armed the traced engine must fall back to
        # the plain interpreter: FaultPlan sites need the documented
        # chaos semantics, not replayed straight-line code.
        rng = np.random.default_rng(13)
        n = 500
        arrays = (np.zeros(n, np.float32),
                  rng.standard_normal(n).astype(np.float32))
        ctx = ExecutionContext(device=TESLA_C2070)
        with using_context(ctx):
            ctx.install_faults(FaultPlan(seed=3))
            h = KernelHarness(DIVERGENT_SRC)
            out_f, res = h(8, 64, *[a.copy() for a in arrays], n,
                           engine="traced")
            ctx.clear_faults()
        assert res.trace_records == 0
        assert res.trace_hits == 0
        assert all(v == 0 for v in trace_cache_stats(ctx).values())
        out_s, _ = _run(DIVERGENT_SRC, 8, 64, arrays, (n,), "serial")
        assert out_f[0].tobytes() == out_s[0].tobytes()


TM_PROBLEM = MatchProblem("sp", frame_h=60, frame_w=80, tmpl_h=16,
                          tmpl_w=12, shift_h=5, shift_w=5, n_frames=1)
TM_AXES = {"tile": [(8, 8)], "threads": [32, 64]}


def _tm_sweep(engine, jobs=1, pool="thread"):
    # functional=True executes every block, and the matcher's barriers
    # split gangs into multiple quanta: each cell's launches replay
    # recorded traces inside the cell's own (hermetic) context.
    return harness_sweep("template_matching", TM_PROBLEM, TM_AXES,
                         seed=11, memory_bytes=8 << 20, engine=engine,
                         functional=True, jobs=jobs, pool=pool)


def _modeled(records):
    return [(r.index, r.config, r.seconds, r.occupancy, r.valid)
            for r in records]


class TestSweeperTraceCache:
    def test_thread_pool_reuses_traces(self):
        traced = _tm_sweep("traced", jobs=2, pool="thread")
        stats = traced.trace_cache_stats()
        assert stats["records"] > 0
        assert stats["hits"] > 0
        # Modeled results match the interpreter's exactly.
        batched = _tm_sweep("batched", jobs=2, pool="thread")
        assert _modeled(traced.records) == _modeled(batched.records)

    def test_process_pool_counters_ship_back(self):
        traced = _tm_sweep("traced", jobs=2, pool="process")
        stats = traced.trace_cache_stats()
        assert stats["records"] > 0
        assert stats["hits"] > 0
        sequential = _tm_sweep("traced", jobs=1)
        assert _modeled(traced.records) == _modeled(sequential.records)


class TestDirtyEpochs:
    def _mem(self):
        gmem = GlobalMemory(1 << 16)
        a = gmem.alloc(256)
        b = gmem.alloc(256)
        gmem.write(a, np.full(64, 1, np.int32))
        gmem.write(b, np.full(64, 2, np.int32))
        return gmem, a, b

    def test_rollback_restores_only_what_was_noted(self):
        gmem, a, b = self._mem()
        gmem.begin_epoch()
        gmem.note_range(a - gmem._BASE, a - gmem._BASE + 256)
        gmem.write(a, np.full(64, 9, np.int32))
        gmem.write(b, np.full(64, 8, np.int32))  # unnoted: survives
        gmem.rollback_epoch()
        assert (gmem.read(a, np.int32, 64) == 1).all()
        assert (gmem.read(b, np.int32, 64) == 8).all()
        assert gmem.end_epoch() == {"allocs": 0, "wild": 0}

    def test_note_lanes_saves_per_allocation(self):
        gmem, a, b = self._mem()
        gmem.begin_epoch()
        addrs = np.array([[a, a + 64, b + 8, b + 16]], np.uint64)
        mask = np.ones_like(addrs, bool)
        gmem.note_lanes(addrs, mask, 4)
        gmem.write(a, np.full(64, 9, np.int32))
        gmem.write(b, np.full(64, 8, np.int32))
        report = gmem.end_epoch()
        assert report["allocs"] == 2
        assert report["wild"] == 0

    def test_note_lanes_masked_out_lanes_ignored(self):
        gmem, a, b = self._mem()
        gmem.begin_epoch()
        addrs = np.array([[a, b]], np.uint64)
        mask = np.array([[True, False]])
        gmem.note_lanes(addrs, mask, 4)
        assert gmem.end_epoch() == {"allocs": 1, "wild": 0}

    def test_epoch_rolls_back_new_allocations(self):
        gmem, a, b = self._mem()
        gmem.begin_epoch()
        c = gmem.alloc(128)
        gmem.write(c, np.full(32, 7, np.int32))
        gmem.rollback_epoch()
        assert c not in gmem.allocations
        # The cursor rewound and the region zeroed: a retry's fresh
        # allocation lands on the same address with clean bytes.
        assert gmem.alloc(128) == c
        assert (gmem.read(c, np.int32, 32) == 0).all()

    def test_epoch_survives_rollback_for_retry(self):
        # A retry loop rolls back and runs again under the same epoch.
        gmem, a, b = self._mem()
        gmem.begin_epoch()
        for attempt in (3, 4):
            gmem.note_range(a - gmem._BASE, a - gmem._BASE + 256)
            gmem.write(a, np.full(64, attempt, np.int32))
            if attempt == 3:
                gmem.rollback_epoch()
        assert (gmem.read(a, np.int32, 64) == 4).all()
        assert gmem.end_epoch()["allocs"] == 1

    def test_rollback_without_epoch_raises(self):
        gmem, _, _ = self._mem()
        with pytest.raises(MemoryError_):
            gmem.rollback_epoch()

    def test_end_without_epoch_is_noop(self):
        gmem, _, _ = self._mem()
        assert gmem.end_epoch() == {"allocs": 0, "wild": 0}

"""Tests for the GPU-PF validation harness and specialize() helper."""

import numpy as np
import pytest

from repro.gpupf import KernelCache
from repro.gpupf.validate import ValidationReport, Validator
from repro.gpusim import GPU, TESLA_C2070
from repro.kernelc.templates import ctrt_block, specialize

SRC = ctrt_block({"N": "n"}) + """
__global__ void doubleUp(const float* in, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < N_VAL) out[i] = in[i] * 2.0f;
}
"""


def make_validator(cache=None, bug=False):
    cache = cache or KernelCache()
    gpu = GPU(TESLA_C2070)
    factor = 2.0 if not bug else 2.0 + 1e-2

    def run_gpu(params):
        n = params["n"]
        rng = np.random.default_rng(n)
        x = rng.random(n).astype(np.float32)
        module = cache.compile(SRC, defines={"CT_N": 1, "N": n})
        d_in = gpu.alloc_array(x)
        d_out = gpu.zeros(n, np.float32)
        result = gpu.launch(module.kernel("doubleUp"),
                            grid=(n + 63) // 64, block=64,
                            args=[d_in, d_out, n])
        return gpu.memcpy_dtoh(d_out, np.float32, n), result.seconds

    def run_ref(params):
        n = params["n"]
        rng = np.random.default_rng(n)
        return rng.random(n).astype(np.float32) * np.float32(factor)

    return Validator(run_gpu, run_ref)


class TestValidator:
    def test_passing_sweep(self):
        report = make_validator().sweep([{"n": n}
                                         for n in (17, 64, 100)])
        assert report.passed
        assert len(report.cases) == 3
        assert "PASS" in report.summary()

    def test_detects_mismatch(self):
        report = make_validator(bug=True).sweep([{"n": 64}])
        assert not report.passed
        assert len(report.failures) == 1
        assert "FAIL" in report.summary()
        assert report.cases[0].max_rel_err > 1e-3

    def test_shape_mismatch_reported(self):
        v = Validator(lambda p: (np.zeros(3), 0.0),
                      lambda p: np.zeros(4))
        case = v.check({"n": 1})
        assert not case.passed
        assert "shape" in case.detail

    def test_error_statistics(self):
        v = Validator(lambda p: (np.array([1.0, 2.0]), 0.0),
                      lambda p: np.array([1.0, 2.5]))
        case = v.check({})
        assert case.max_abs_err == pytest.approx(0.5)
        assert case.max_rel_err == pytest.approx(0.2)


class TestSpecializeSourceToSource:
    def test_identifier_substitution(self):
        src = """
        __global__ void k(float* out) {
            out[threadIdx.x] = (float)WIDTH * SCALE;
        }
        """
        kernel = specialize(src, "k", WIDTH=10, SCALE=0.5)
        gpu = GPU(TESLA_C2070)
        d_out = gpu.zeros(4, np.float32)
        gpu.launch(kernel, 1, 4, [d_out])
        np.testing.assert_allclose(gpu.memcpy_dtoh(d_out, np.float32, 4),
                                   5.0)

    def test_word_boundaries_respected(self):
        """'N' must not rewrite inside 'NOT_N' or 'N2'."""
        src = """
        __global__ void k(float* out, int NOT_N, int N2) {
            out[threadIdx.x] = (float)(N + NOT_N + N2);
        }
        """
        kernel = specialize(src, "k", N=7)
        gpu = GPU(TESLA_C2070)
        d_out = gpu.zeros(1, np.float32)
        gpu.launch(kernel, 1, 1, [d_out, 100, 2000])
        assert gpu.memcpy_dtoh(d_out, np.float32, 1)[0] == 2107.0

    def test_unrolls_like_defines(self):
        src = """
        __global__ void k(const float* x, float* out) {
            float acc = 0.0f;
            for (int i = 0; i < COUNT; i++) acc += x[i];
            out[threadIdx.x] = acc;
        }
        """
        kernel = specialize(src, "k", COUNT=6)
        assert "bra" not in kernel.to_ptx()

"""Occupancy calculator tests (Table 2.1/2.2 behaviours)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import TESLA_C1060, TESLA_C2070, OccupancyError, occupancy


class TestLimits:
    def test_full_occupancy_small_kernel(self):
        occ = occupancy(TESLA_C1060, 256, 10, 0)
        assert occ.warps_per_sm == 32  # C1060 max
        assert occ.fraction(TESLA_C1060) == 1.0

    def test_register_limited(self):
        # 256 threads * 60 regs = 15360 regs/block -> 1 block on C1060.
        occ = occupancy(TESLA_C1060, 256, 60, 0)
        assert occ.blocks_per_sm == 1
        assert occ.limited_by == "registers"

    def test_smem_limited(self):
        occ = occupancy(TESLA_C1060, 64, 10, 9000)
        assert occ.blocks_per_sm == 1
        assert occ.limited_by == "shared memory"

    def test_c2070_has_more_headroom(self):
        """The same config achieves more blocks/SM on Fermi."""
        cfg = dict(threads_per_block=128, regs_per_thread=32,
                   smem_per_block=4096)
        occ1 = occupancy(TESLA_C1060, **cfg)
        occ2 = occupancy(TESLA_C2070, **cfg)
        assert occ2.blocks_per_sm > occ1.blocks_per_sm

    def test_max_blocks_cap(self):
        occ = occupancy(TESLA_C1060, 32, 4, 0)
        assert occ.blocks_per_sm == 8  # hardware cap

    def test_too_many_threads_raises(self):
        with pytest.raises(OccupancyError):
            occupancy(TESLA_C1060, 1024, 10, 0)  # C1060 max is 512
        occupancy(TESLA_C2070, 1024, 10, 0)  # fine on Fermi

    def test_too_many_registers_raises(self):
        with pytest.raises(OccupancyError):
            occupancy(TESLA_C2070, 64, 100, 0)  # Fermi cap is 63/thread

    def test_too_much_shared_memory_raises(self):
        with pytest.raises(OccupancyError):
            occupancy(TESLA_C1060, 64, 10, 17000)

    def test_smem_fits_on_fermi_only(self):
        with pytest.raises(OccupancyError):
            occupancy(TESLA_C1060, 64, 10, 20000)
        occ = occupancy(TESLA_C2070, 64, 10, 20000)
        assert occ.blocks_per_sm >= 1

    def test_zero_threads_raises(self):
        with pytest.raises(OccupancyError):
            occupancy(TESLA_C1060, 0, 4, 0)


class TestProperties:
    @settings(max_examples=200)
    @given(threads=st.integers(1, 512), regs=st.integers(2, 60),
           smem=st.integers(0, 16000))
    def test_invariants_c1060(self, threads, regs, smem):
        try:
            occ = occupancy(TESLA_C1060, threads, regs, smem)
        except OccupancyError:
            return
        dev = TESLA_C1060
        assert 1 <= occ.blocks_per_sm <= dev.max_blocks_per_sm
        assert occ.warps_per_sm <= dev.max_warps_per_sm
        # Register file is never oversubscribed.
        assert (occ.blocks_per_sm * occ.warps_per_block * 32 * regs
                <= dev.regs_per_sm)
        # Shared memory is never oversubscribed.
        assert occ.blocks_per_sm * smem <= dev.smem_per_sm

    @settings(max_examples=100)
    @given(threads=st.integers(1, 512), regs=st.integers(2, 40),
           smem=st.integers(0, 8000))
    def test_monotone_in_registers(self, threads, regs, smem):
        """More registers per thread never increases blocks/SM."""
        try:
            lo = occupancy(TESLA_C2070, threads, regs, smem)
            hi = occupancy(TESLA_C2070, threads, min(regs + 8, 63), smem)
        except OccupancyError:
            return
        assert hi.blocks_per_sm <= lo.blocks_per_sm

"""Observability subsystem tests: spans, metrics, profiles, exports.

Covers the contracts DESIGN.md §8 states:

* span trees are well-formed — no orphan parents, parents precede
  children in begin order, child intervals nest inside their parent's;
* metrics snapshots are exact and identical under ``jobs=1``,
  ``jobs=4`` thread pools, and ``jobs=4`` process pools;
* exported Chrome-trace JSON conforms to the schema
  :func:`repro.obs.export.validate_chrome` enforces;
* tracing off is zero-allocation: no :class:`Tracer` or :class:`Span`
  object is ever constructed on an untraced run.
"""

import json
import pickle
import threading

import pytest

from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.piv import PIVProblem
from repro.apps.template_matching import MatchConfig, MatchProblem
from repro.gpupf import KernelCache, Pipeline
from repro.gpusim import GPU, TESLA_C2070
from repro.obs import (LaunchProfile, MetricsRegistry, Span, Tracer,
                       chrome_trace, current_tracer, metrics_table,
                       summary_tree, validate_chrome, write_trace)
from repro.obs import report as report_cli
from repro.runtime.context import ExecutionContext, using_context
from repro.tuning.app_sweeps import harness_sweep
from repro.tuning.sweep import SweepRecord, Sweeper, grid_configs
from tests.test_gpupf import SCALE_SRC

#: Slack (seconds) for float-subtraction timestamp arithmetic.
EPS = 1e-6


def assert_well_formed(exported):
    """Every span: unique sid, parent already seen, interval nested."""
    seen = {}
    for s in exported["spans"]:
        assert s["sid"] not in seen, f"duplicate sid {s['sid']}"
        seen[s["sid"]] = s
        assert s["dur"] >= 0.0
        if s["parent"] is None:
            continue
        assert s["parent"] in seen, \
            f"span {s['sid']} parent {s['parent']} missing/out of order"
        p = seen[s["parent"]]
        assert s["start"] >= p["start"] - EPS
        assert s["start"] + s["dur"] <= p["start"] + p["dur"] + EPS


def build_traced_pipeline(ctx, specialize=True):
    """The test_gpupf scale pipeline, on a private traced context."""
    gpu = GPU(TESLA_C2070, context=ctx)
    pipe = Pipeline(gpu, "scale", cache=KernelCache(), trace=True)
    n = pipe.int_param("n", 256)
    factor = pipe.int_param("factor", 3)
    extent = pipe.extent_param("buf", (256,), 4)
    extent.derive_from([n], lambda k: ((k,), 4))
    defines = {"CT_FACTOR": 1, "FACTOR": factor} if specialize else {}
    mod = pipe.module("mod", SCALE_SRC, defines=defines)
    k = pipe.kernel("scale", mod)
    h_in = pipe.host_memory("h_in", extent)
    h_out = pipe.host_memory("h_out", extent)
    d_in = pipe.global_memory("d_in", extent)
    d_out = pipe.global_memory("d_out", extent)
    grid = pipe.triplet_param("grid", (2, 1, 1))
    block = pipe.triplet_param("block", (128, 1, 1))
    pipe.copy("upload", h_in, d_in)
    pipe.kernel_exec("run", k, grid, block, [d_in, d_out, n, factor])
    pipe.copy("download", d_out, h_out)
    return pipe


SMALL_TM = MatchProblem("obs-tm", frame_h=60, frame_w=80, tmpl_h=16,
                        tmpl_w=12, shift_h=5, shift_w=5, n_frames=1)
SMALL_PIV = PIVProblem("obs-piv", 48, 64, mask=8, offs=5)


class TestTracer:
    def test_span_nesting_and_parents(self):
        t = Tracer("t")
        with t.span("a", "x"):
            with t.span("b", "x"):
                pass
            with t.span("c", "x"):
                pass
        a, b, c = t.spans
        assert (a.parent, b.parent, c.parent) == (None, a.sid, a.sid)
        assert_well_formed(t.to_dict())

    def test_per_thread_parenting_is_disjoint(self):
        t = Tracer("t")
        done = threading.Barrier(3)

        def work(name):
            with t.span(name, "thread"):
                done.wait()

        threads = [threading.Thread(target=work, args=(f"w{i}",))
                   for i in range(2)]
        for th in threads:
            th.start()
        done.wait()
        for th in threads:
            th.join()
        assert all(s.parent is None for s in t.spans)
        assert len({s.tid for s in t.spans}) == 2
        assert_well_formed(t.to_dict())

    def test_event_is_instantaneous(self):
        t = Tracer("t")
        with t.span("outer", "x"):
            e = t.event("fault.launch", "fault", site="k")
        assert e.duration == 0.0
        assert e.parent == t.spans[0].sid

    def test_exception_closes_span_and_records_error(self):
        t = Tracer("t")
        with pytest.raises(ValueError):
            with t.span("boom", "x"):
                raise ValueError("no")
        (s,) = t.spans
        assert s.duration is not None
        assert s.attrs["error"] == "ValueError: no"

    def test_graft_retimes_into_the_past(self):
        # Real ordering: the aggregating tracer's enclosing span opens
        # before the worker runs, as in Sweeper.sweep().
        parent = Tracer("parent")
        with parent.span("sweep", "sweep"):
            worker = Tracer("worker")
            with worker.span("cell-work", "x"):
                with worker.span("inner", "x"):
                    pass
            wrapper = parent.graft(worker.to_dict(), "cell:0")
        exported = parent.to_dict()
        assert_well_formed(exported)
        assert wrapper.parent == parent.spans[0].sid
        grafted = [s for s in exported["spans"]
                   if s["parent"] == wrapper.sid]
        assert [s["name"] for s in grafted] == ["cell-work"]
        assert parent.graft({"spans": []}, "cell:1") is None


class TestMetricsRegistry:
    def test_instruments_and_snapshot(self):
        m = MetricsRegistry()
        m.inc("fault.launch")
        m.inc("fault.launch", 2)
        m.gauge("pipeline.iterations", 7)
        m.observe("launch.cycles", 10.0)
        m.observe("launch.cycles", 30.0)
        snap = m.snapshot()
        assert snap["counters"] == {"fault.launch": 3}
        assert snap["gauges"] == {"pipeline.iterations": 7}
        assert snap["histograms"]["launch.cycles"] == {
            "count": 2, "sum": 40.0, "mean": 20.0,
            "min": 10.0, "max": 30.0}
        json.dumps(snap)  # plain JSON types throughout

    def test_merge_combines_summaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"n": 5}
        assert snap["histograms"]["h"] == {
            "count": 2, "sum": 6.0, "mean": 3.0, "min": 1.0,
            "max": 5.0}

    def test_concurrent_increments_are_exact(self):
        m = MetricsRegistry()

        def work():
            for _ in range(1000):
                m.inc("n")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert m.counter("n") == 8000


class TestZeroOverhead:
    def test_untraced_run_allocates_no_tracer_objects(self, monkeypatch):
        from repro.obs import trace as trace_mod

        def boom(*args, **kwargs):
            raise AssertionError(
                "tracer/span allocated while tracing is off")

        monkeypatch.setattr(trace_mod.Tracer, "__init__", boom)
        monkeypatch.setattr(trace_mod.Span, "__init__", boom)
        ctx = ExecutionContext(name="notrace")
        with using_context(ctx):
            gpu = GPU(TESLA_C2070, context=ctx)
            pipe = Pipeline(gpu, "scale", cache=KernelCache())
            n = pipe.int_param("n", 256)
            factor = pipe.int_param("factor", 3)
            extent = pipe.extent_param("buf", (256,), 4)
            mod = pipe.module("mod", SCALE_SRC,
                              defines={"CT_FACTOR": 1, "FACTOR": factor})
            k = pipe.kernel("scale", mod)
            d_in = pipe.global_memory("d_in", extent)
            d_out = pipe.global_memory("d_out", extent)
            grid = pipe.triplet_param("grid", (2, 1, 1))
            block = pipe.triplet_param("block", (128, 1, 1))
            pipe.kernel_exec("run", k, grid, block,
                             [d_in, d_out, n, factor])
            pipe.run(2)
        assert ctx.tracer is None
        assert current_tracer() is None

    def test_untraced_harness_run_carries_no_trace(self, monkeypatch):
        from repro.obs import trace as trace_mod

        def boom(*args, **kwargs):
            raise AssertionError("span allocated while tracing is off")

        monkeypatch.setattr(trace_mod.Span, "__init__", boom)
        result = run_request(RunRequest(
            ProblemSpec("template_matching", SMALL_TM, seed=11,
                        memory_bytes=8 << 20),
            MatchConfig(tile_w=8, tile_h=8, threads=32)))
        assert result.trace is None
        assert result.metrics is None
        assert result.profiles == []


class TestPipelineTracing:
    def test_spans_cover_every_phase(self):
        ctx = ExecutionContext(name="obs-pipe")
        pipe = build_traced_pipeline(ctx)
        pipe.run(2)
        exported = ctx.tracer.to_dict()
        assert_well_formed(exported)
        cats = {s["cat"] for s in exported["spans"]}
        assert {"pipeline", "action", "compile", "cache", "plan",
                "launch", "engine"} <= cats
        names = [s["name"] for s in exported["spans"]]
        assert "refresh:scale" in names and "run:scale" in names
        assert "launch:scale" in names and "nvcc" in names

    def test_launch_spans_carry_profiles(self):
        ctx = ExecutionContext(name="obs-prof")
        pipe = build_traced_pipeline(ctx)
        pipe.run(1)
        launches = [s for s in ctx.tracer.spans
                    if s.cat == "launch"]
        assert launches
        for span in launches:
            for key in ("occupancy", "reg_count", "mem_transactions",
                        "cycles", "instructions", "engine", "bound"):
                assert key in span.attrs, key
        profiles = ctx.tracer.profiles
        assert len(profiles) == len(launches)
        p = profiles[0]
        assert isinstance(p, LaunchProfile)
        assert p.kernel == "scale" and p.cycles > 0
        assert 0.0 < p.occupancy <= 1.0 and p.reg_count > 0
        assert p.mem_transactions > 0
        # The always-on metric side of a traced launch.
        snap = ctx.metrics.snapshot()
        assert snap["counters"]["launch.count"] == len(launches)
        assert snap["histograms"]["launch.cycles"]["count"] == \
            len(launches)

    def test_export_trace_validates_and_embeds_metrics(self, tmp_path):
        ctx = ExecutionContext(name="obs-export")
        pipe = build_traced_pipeline(ctx)
        pipe.run(1)
        path = tmp_path / "trace.json"
        pipe.export_trace(str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome(doc) == []
        metrics = doc["otherData"]["metrics"]
        assert "cache.plan_misses" in metrics["counters"]
        assert report_cli.main(["--check", str(path)]) == 0

    def test_untraced_pipeline_refuses_export(self, tmp_path):
        from repro.gpupf.pipeline import PipelineError
        ctx = ExecutionContext(name="obs-noexport")
        gpu = GPU(TESLA_C2070, context=ctx)
        pipe = Pipeline(gpu, "p", cache=KernelCache())
        with pytest.raises(PipelineError, match="trace=True"):
            pipe.export_trace(str(tmp_path / "t.json"))

    def test_health_report_keys_unchanged(self):
        ctx = ExecutionContext(name="obs-health")
        pipe = build_traced_pipeline(ctx)
        pipe.run(1)
        report = pipe.health_report()
        assert set(report) == {"pipeline", "faults", "retries",
                               "degraded", "fallbacks", "cache",
                               "refreshes", "iterations"}
        assert report["faults"] == {} and report["fallbacks"] == 0


class TestHarnessTracing:
    def test_traced_result_survives_pickling(self):
        request = RunRequest(
            ProblemSpec("template_matching", SMALL_TM, seed=11,
                        memory_bytes=8 << 20),
            MatchConfig(tile_w=8, tile_h=8, threads=32), trace=True)
        result = pickle.loads(pickle.dumps(run_request(request)))
        assert_well_formed(result.trace)
        assert result.profiles and all(
            isinstance(p, LaunchProfile) for p in result.profiles)
        assert result.metrics["counters"]["launch.count"] == \
            len(result.profiles)
        cats = {s["cat"] for s in result.trace["spans"]}
        assert {"harness", "pipeline", "compile", "launch"} <= cats


class TestSweepObservability:
    AXES = dict(rb=[1, 2], threads=[32, 64])

    def _sweep(self, **kw):
        return harness_sweep("piv", SMALL_PIV, self.AXES, seed=7,
                             memory_bytes=16 << 20, trace=True, **kw)

    def test_metrics_snapshot_exact_across_pools(self):
        seq = self._sweep(jobs=1)
        thr = self._sweep(jobs=4, pool="thread")
        prc = self._sweep(jobs=4, pool="process")
        baseline = seq.metrics.snapshot()
        assert thr.metrics.snapshot() == baseline
        assert prc.metrics.snapshot() == baseline
        assert baseline["counters"]["sweep.cells"] == 4
        assert baseline["histograms"]["sweep.cell_seconds"]["count"] \
            == 4
        assert seq.cache_report == thr.cache_report == prc.cache_report
        assert seq.cache_report["plan_misses"] == 4

    def test_traced_sweep_grafts_cells_and_validates(self):
        sweeper = self._sweep(jobs=4, pool="process")
        exported = sweeper.ctx.tracer.to_dict()
        assert_well_formed(exported)
        cells = [s for s in exported["spans"]
                 if s["name"].startswith("cell:")]
        assert len(cells) == len(sweeper.records)
        # Each grafted cell subtree carries the worker's launch spans.
        for cell in cells:
            children = [s for s in exported["spans"]
                        if s["parent"] == cell["sid"]]
            assert children
        assert validate_chrome(chrome_trace(exported)) == []

    def test_error_taxonomy_is_a_registry_view(self):
        def run(config):
            if config["x"] % 2:
                raise RuntimeError("odd")
            return SweepRecord(config=config, seconds=1.0)

        sweeper = Sweeper(run)
        sweeper.sweep(grid_configs(x=[0, 1, 2, 3]))
        assert sweeper.error_taxonomy() == {"RuntimeError": 2}
        assert sweeper.metrics.counters("error.") == \
            {"error.RuntimeError": 2}
        assert sweeper.metrics.counter("sweep.cells") == 4

    def test_slowest_report_ranks_by_modeled_time(self):
        def run(config):
            return SweepRecord(config=config,
                               seconds=config["x"] * 1e-3)

        sweeper = Sweeper(run)
        sweeper.sweep(grid_configs(x=[1, 3, 2]))
        report = sweeper.slowest_report(2)
        lines = report.splitlines()
        assert "slowest 2 of 3 cells" in lines[0]
        # title, header, separator, then rows worst-first.
        assert "x=3" in lines[3] and "x=2" in lines[4]


class TestChromeExport:
    def _doc(self):
        t = Tracer("t")
        with t.span("root", "pipeline"):
            with t.span("child", "launch"):
                pass
            t.event("fault.launch", "fault")
        return chrome_trace(t.to_dict(), metrics={"counters": {"n": 1},
                                                  "gauges": {},
                                                  "histograms": {}})

    def test_valid_document_passes(self):
        assert validate_chrome(self._doc()) == []

    def test_validator_catches_corruption(self):
        assert validate_chrome([]) != []
        assert validate_chrome({}) != []
        doc = self._doc()
        doc["traceEvents"][0].pop("dur")
        assert any("dur" in p for p in validate_chrome(doc))
        doc = self._doc()
        doc["traceEvents"][1]["args"]["parent"] = 999
        assert any("orphan" in p for p in validate_chrome(doc))
        doc = self._doc()
        doc["traceEvents"][1]["args"]["sid"] = \
            doc["traceEvents"][0]["args"]["sid"]
        assert any("duplicate" in p for p in validate_chrome(doc))
        doc = self._doc()
        doc["traceEvents"][1]["ts"] = doc["traceEvents"][0]["ts"] + 1e9
        assert any("escapes" in p for p in validate_chrome(doc))

    def test_cli_round_trip(self, tmp_path, capsys):
        ctx = ExecutionContext(name="obs-cli")
        pipe = build_traced_pipeline(ctx)
        pipe.run(1)
        path = tmp_path / "trace.json"
        write_trace(str(path), ctx.tracer.to_dict(),
                    metrics=ctx.metrics_snapshot())
        assert report_cli.main(["--check", str(path)]) == 0
        assert report_cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "launch:scale" in out and "cache.plan_misses" in out
        assert report_cli.main(["--metrics", str(path)]) == 0
        assert report_cli.main([str(tmp_path / "missing.json")]) == 2
        path.write_text(json.dumps({"traceEvents": [{}]}))
        assert report_cli.main(["--check", str(path)]) == 1

    def test_summary_and_metrics_tables_render(self):
        doc = self._doc()
        t = Tracer("t")
        with t.span("root", "pipeline", note="hi"):
            pass
        text = summary_tree(t.to_dict())
        assert "root" in text and "note=hi" in text
        table = metrics_table(doc["otherData"]["metrics"])
        assert "counter" in table


class TestCounterNamespace:
    def test_bump_delegates_to_registry(self):
        ctx = ExecutionContext(name="obs-bump")
        assert ctx.bump("sweep.cells") == 1
        assert ctx.bump("sweep.cells", 4) == 5
        assert ctx.metrics.counter("sweep.cells") == 5
        assert ctx.counters["sweep.cells"] == 5
        assert ctx.stats()["counters"] == {"sweep.cells": 5}

    def test_metrics_snapshot_merges_cache_taxonomy(self):
        ctx = ExecutionContext(name="obs-snap")
        snap = ctx.metrics_snapshot()
        for key in ("cache.plan_hits", "cache.plan_misses",
                    "cache.gang_hits", "cache.gang_misses",
                    "cache.kernel_hits", "cache.kernel_misses",
                    "cache.trace_hits", "cache.trace_deopts"):
            assert key in snap["counters"], key
        flat = ctx.cache_counters()
        assert set(flat) == {"plan_hits", "plan_misses", "gang_hits",
                             "gang_misses", "trace_hits",
                             "trace_misses", "trace_records",
                             "trace_deopts", "trace_aborts"}

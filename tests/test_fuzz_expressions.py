"""Differential fuzzing of the compiler.

Random integer expression trees compile three ways — run-time
evaluated, specialized (inputs baked in as macros, exercising the whole
folding pipeline), and at -O0 — and all three must agree with a Python
int32-semantics oracle.  This is the strongest semantic check in the
suite: any folding, strength-reduction, magic-division, CSE, or
propagation bug that changes a value breaks it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GPU, TESLA_C2070
from repro.kernelc import nvcc

_M32 = 0xFFFFFFFF


def _wrap(v: int) -> int:
    v &= _M32
    return v - (1 << 32) if v >= (1 << 31) else v


class Node:
    """Expression node: renders to C and evaluates with C semantics."""

    def __init__(self, op, a=None, b=None, value=None, var=None):
        self.op = op
        self.a = a
        self.b = b
        self.value = value
        self.var = var

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "var":
            return self.var
        if self.op == "min":
            return f"min({self.a.render()}, {self.b.render()})"
        if self.op == "max":
            return f"max({self.a.render()}, {self.b.render()})"
        if self.op == "neg":
            # The space stops '-(-1)' lexing as the '--' operator,
            # exactly as a C pretty-printer must.
            return f"(- {self.a.render()})"
        if self.op == "not":
            return f"(~{self.a.render()})"
        return f"({self.a.render()} {self.op} {self.b.render()})"

    def eval(self, env) -> int:
        if self.op == "lit":
            return self.value
        if self.op == "var":
            return env[self.var]
        if self.op == "neg":
            return _wrap(-self.a.eval(env))
        if self.op == "not":
            return _wrap(~self.a.eval(env))
        a = self.a.eval(env)
        b = self.b.eval(env)
        if self.op == "+":
            return _wrap(a + b)
        if self.op == "-":
            return _wrap(a - b)
        if self.op == "*":
            return _wrap(a * b)
        if self.op == "&":
            return _wrap(a & b)
        if self.op == "|":
            return _wrap(a | b)
        if self.op == "^":
            return _wrap(a ^ b)
        if self.op == "<<":
            return _wrap(a << (b & 31))
        if self.op == ">>":
            return a >> (b & 31)  # arithmetic on signed
        if self.op == "/":
            if b == 0:
                return None  # UB: skip comparisons
            q = abs(a) // abs(b)
            return _wrap(q if (a >= 0) == (b >= 0) else -q)
        if self.op == "%":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            return _wrap(a - q * b)
        if self.op == "min":
            return min(a, b)
        if self.op == "max":
            return max(a, b)
        raise ValueError(self.op)

    def has_div(self) -> bool:
        if self.op in ("/", "%"):
            return True
        return any(n.has_div() for n in (self.a, self.b)
                   if n is not None)


VARS = ["va", "vb", "vc"]

lits = st.integers(-100, 100).map(lambda v: Node("lit", value=v))
poslits = st.integers(1, 64).map(lambda v: Node("lit", value=v))
variables = st.sampled_from(VARS).map(lambda n: Node("var", var=n))
leaves = st.one_of(lits, variables)


def exprs(depth: int):
    if depth == 0:
        return leaves
    sub = exprs(depth - 1)
    binop = st.tuples(
        st.sampled_from(["+", "-", "*", "&", "|", "^", "min", "max"]),
        sub, sub).map(lambda t: Node(t[0], t[1], t[2]))
    shift = st.tuples(st.sampled_from(["<<", ">>"]), sub,
                      st.integers(0, 7).map(
                          lambda v: Node("lit", value=v))) \
        .map(lambda t: Node(t[0], t[1], t[2]))
    divmod_ = st.tuples(st.sampled_from(["/", "%"]), sub, poslits) \
        .map(lambda t: Node(t[0], t[1], t[2]))
    unop = st.tuples(st.sampled_from(["neg", "not"]), sub) \
        .map(lambda t: Node(t[0], t[1]))
    return st.one_of(binop, shift, divmod_, unop, leaves)


def run_on_gpu(source, entry, args):
    gpu = GPU(TESLA_C2070)
    module = nvcc(source)
    d_out = gpu.zeros(1, np.int32)
    gpu.launch(module.kernel(entry), 1, 1, [d_out] + list(args))
    return int(gpu.memcpy_dtoh(d_out, np.int32, 1)[0])


@settings(max_examples=25, deadline=None)
@given(tree=exprs(3),
       va=st.integers(-1000, 1000),
       vb=st.integers(-1000, 1000),
       vc=st.integers(-1000, 1000))
def test_re_sk_and_oracle_agree(tree, va, vb, vc):
    env = {"va": va, "vb": vb, "vc": vc}
    expected = tree.eval(env)
    if expected is None:
        return  # division by zero somewhere: UB, skip
    expr = tree.render()
    re_src = f"""
    __global__ void k(int* out, int va, int vb, int vc) {{
        out[0] = {expr};
    }}
    """
    sk_src = f"""
    __global__ void k(int* out, int va_, int vb_, int vc_) {{
        int va = VA; int vb = VB; int vc = VC;
        out[0] = {expr};
    }}
    """
    got_re = run_on_gpu(re_src, "k", [va, vb, vc])
    assert got_re == expected, f"RE mismatch for {expr}"
    gpu = GPU(TESLA_C2070)
    module = nvcc(sk_src, defines={"VA": va, "VB": vb, "VC": vc})
    d_out = gpu.zeros(1, np.int32)
    gpu.launch(module.kernel("k"), 1, 1, [d_out, va, vb, vc])
    got_sk = int(gpu.memcpy_dtoh(d_out, np.int32, 1)[0])
    assert got_sk == expected, f"SK mismatch for {expr}"
    # Fully-specialized expressions must fold to a single constant
    # store (no arithmetic survives) unless a divide-by-variable-zero
    # guard kept something alive.
    kernel = module.kernel("k")
    arith = [i for i in kernel.ir.instructions()
             if i.op in ("add", "sub", "mul", "div", "rem", "and",
                         "or", "xor", "shl", "shr", "min", "max",
                         "mulhi", "neg", "not")]
    assert not arith, f"SK failed to fold {expr}: {arith}"


@settings(max_examples=15, deadline=None)
@given(tree=exprs(2),
       va=st.integers(-50, 50), vb=st.integers(-50, 50),
       vc=st.integers(-50, 50))
def test_opt_levels_agree(tree, va, vb, vc):
    """-O0 (no passes) and -O3 must compute the same value."""
    env = {"va": va, "vb": vb, "vc": vc}
    if tree.eval(env) is None:
        return
    src = f"""
    __global__ void k(int* out, int va, int vb, int vc) {{
        out[0] = {tree.render()};
    }}
    """
    results = []
    for opt in (0, 3):
        gpu = GPU(TESLA_C2070)
        module = nvcc(src, opt_level=opt)
        d_out = gpu.zeros(1, np.int32)
        gpu.launch(module.kernel("k"), 1, 1, [d_out, va, vb, vc])
        results.append(int(gpu.memcpy_dtoh(d_out, np.int32, 1)[0]))
    assert results[0] == results[1] == tree.eval(env)

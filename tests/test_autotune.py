"""Sweep-equivalence suite for the profile-guided AutoTuner.

The headline contract (ISSUE 7 / ROADMAP): on every paper-shaped app
grid the tuner returns the same ``best_record`` key as the exhaustive
``Sweeper`` (or a config within :data:`SECONDS_RTOL` on modeled
seconds) from **less than 25 % of the grid evaluations**, and its
evaluation sequence is bit-identical across ``jobs=1``, thread pools,
and process pools.  Synthetic landscapes (fast, no simulator) pin the
algorithmic contracts: determinism in the seed, the hard ``budget``
cap, the disagreeing-diagnosis fallback, and typed fault re-raise.
"""

import itertools

import pytest

from repro.apps.backprojection import BPProblem
from repro.apps.piv import PIVProblem
from repro.apps.template_matching import MatchProblem
from repro.faults import CompileFault
from repro.obs.profile import LaunchProfile
from repro.tuning import harness_autotune, harness_sweep
from repro.tuning.autotune import (APP_RULES, AutoTuner, SECONDS_RTOL,
                                   diagnose)
from repro.tuning.sweep import (SweepRecord, Sweeper, best_record,
                                grid_configs)

# ---------------------------------------------------------------------
# Paper-shaped app grids: the Table 6.21/6.22 axes (rb x threads,
# tile x threads, block x zb) at test scale, sized so that <25 % of
# the grid is a meaningful bar (40-48 cells each).
# ---------------------------------------------------------------------

APP_GRIDS = {
    "piv": (
        PIVProblem("at", 40, 40, mask=8, offs=3),
        {"rb": [1, 2, 4, 8, 16],
         "threads": [32, 64, 96, 128, 160, 192, 224, 256]},
    ),
    "template_matching": (
        MatchProblem("at", frame_h=60, frame_w=80, tmpl_h=16,
                     tmpl_w=12, shift_h=5, shift_w=5, n_frames=1),
        {"tile": [(4, 4), (8, 4), (8, 8), (16, 8), (16, 16), (8, 16)],
         "threads": [32, 64, 96, 128, 160, 192, 224, 256]},
    ),
    "backprojection": (
        BPProblem("at", nx=12, ny=12, nz=8, n_proj=6, det_u=16,
                  det_v=12),
        {"block": [(4, 4), (8, 4), (8, 8), (16, 4), (16, 8), (16, 16),
                   (32, 4), (32, 8)],
         "zb": [1, 2, 3, 4, 6, 8]},
    ),
}


@pytest.fixture(scope="module")
def exhaustive():
    """Lazily cached exhaustive sweeps (each app pays once)."""
    cache = {}

    def get(app):
        if app not in cache:
            problem, axes = APP_GRIDS[app]
            cache[app] = harness_sweep(app, problem, axes, seed=11,
                                       memory_bytes=8 << 20)
        return cache[app]

    return get


@pytest.fixture(scope="module")
def tuned():
    """Lazily cached tuner runs, keyed by (app, jobs, pool)."""
    cache = {}

    def get(app, jobs=1, pool="thread"):
        key = (app, jobs, pool)
        if key not in cache:
            problem, axes = APP_GRIDS[app]
            cache[key] = harness_autotune(app, problem, axes, seed=11,
                                          memory_bytes=8 << 20,
                                          jobs=jobs, pool=pool)
        return cache[key]

    return get


def _comparable(records):
    """The fields that must not depend on how the tuner executed."""
    return [(r.index, r.config, r.seconds, r.reg_count, r.occupancy,
             r.valid, r.error, r.counters) for r in records]


class TestSweepEquivalence:
    @pytest.mark.parametrize("app", sorted(APP_GRIDS))
    def test_matches_exhaustive_optimum(self, app, exhaustive, tuned):
        exh_best = best_record(exhaustive(app).records)
        result = tuned(app).result
        matched = result.best.key() == exh_best.key()
        within_tol = (result.best.seconds
                      <= exh_best.seconds * (1.0 + SECONDS_RTOL))
        assert matched or within_tol, (
            f"{app}: tuner best {result.best.config} "
            f"({result.best.seconds}) vs exhaustive "
            f"{exh_best.config} ({exh_best.seconds})")

    @pytest.mark.parametrize("app", sorted(APP_GRIDS))
    def test_under_quarter_of_grid(self, app, tuned):
        result = tuned(app).result
        assert not result.fallback
        assert result.grid_size == len(
            grid_configs(**{k: list(v)
                            for k, v in APP_GRIDS[app][1].items()}))
        assert result.evals == len(tuned(app).records)
        assert result.evals < 0.25 * result.grid_size, (
            f"{app}: {result.evals}/{result.grid_size} "
            f"= {result.frac:.0%}")

    @pytest.mark.parametrize("app", sorted(APP_GRIDS))
    def test_bit_identical_across_pools(self, app, tuned):
        inline = tuned(app, jobs=1)
        threads = tuned(app, jobs=4, pool="thread")
        procs = tuned(app, jobs=2, pool="process")
        for other in (threads, procs):
            assert _comparable(other.records) == \
                _comparable(inline.records)
            assert other.result.sequence == inline.result.sequence
            assert other.decisions == inline.decisions
            assert other.result.best.key() == inline.result.best.key()

    def test_harness_sweep_autotune_flag(self):
        problem, axes = APP_GRIDS["piv"]
        sweeper = harness_sweep("piv", problem, axes, seed=11,
                                memory_bytes=8 << 20, autotune=True)
        assert sweeper.tuner.result is not None
        assert sweeper.records is sweeper.tuner.records
        assert sweeper.tuner.result.evals < 0.25 * len(
            grid_configs(**{k: list(v) for k, v in axes.items()}))

    def test_tuner_options_require_autotune(self):
        problem, axes = APP_GRIDS["piv"]
        with pytest.raises(TypeError, match="autotune=True"):
            harness_sweep("piv", problem, axes, budget=4)


# ---------------------------------------------------------------------
# Synthetic landscapes: algorithmic contracts without the simulator.
# ---------------------------------------------------------------------

def make_profile(**overrides):
    """A real LaunchProfile with benign defaults, field-overridable."""
    base = dict(kernel="k", grid=(4, 1, 1), block=(32, 1, 1),
                blocks_executed=4, total_blocks=4, reg_count=16,
                shared_bytes=0, occupancy=1.0, blocks_per_sm=8,
                occupancy_limit="warps", instructions=1000,
                mem_transactions=10, mem_bytes=1280,
                divergent_branches=0, global_stalls=5,
                shared_stalls=2, barriers=1, atomics=0,
                cycles=1000.0, seconds=1e-5, bound="latency",
                engine="reference")
    base.update(overrides)
    return LaunchProfile(**base)


BOWL_AXES = {"x": [0, 1, 2, 3, 4, 5, 6, 7, 8], "y": [0, 1, 2, 3, 4]}


def bowl_run(config):
    """Convex landscape with its optimum at (x=6, y=1); every record
    carries one latency-bound profile, so all probes agree."""
    seconds = 1e-6 * (1.0 + (config["x"] - 6) ** 2
                      + (config["y"] - 1) ** 2)
    return SweepRecord(config=dict(config), seconds=seconds,
                       profiles=[make_profile(seconds=seconds)])


def disagreeing_run(config):
    """Same bowl, but the modeled bound cycles with x, so the three
    diagonal probes report three different limiters."""
    record = bowl_run(config)
    bound = ("latency", "issue", "bandwidth")[config["x"] % 3]
    record.profiles[:] = [make_profile(seconds=record.seconds,
                                       bound=bound)]
    return record


DISAGREE_AXES = {"x": [0, 1, 2, 3, 4], "y": [0, 1, 2, 3, 4]}


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        runs = [AutoTuner(bowl_run, BOWL_AXES, extra_probes=3, seed=7)
                for _ in range(2)]
        results = [t.tune() for t in runs]
        assert results[0].sequence == results[1].sequence
        assert runs[0].decisions == runs[1].decisions
        assert results[0].best.key() == results[1].best.key()
        assert results[0].evals == results[1].evals

    def test_finds_bowl_optimum(self):
        result = AutoTuner(bowl_run, BOWL_AXES).tune()
        assert result.best.config == {"x": 6, "y": 1}
        assert not result.fallback
        assert result.diagnosis == "latency"
        assert result.evals < len(grid_configs(**BOWL_AXES))

    def test_seed_only_feeds_extra_probes(self):
        # Without extra probes the seed changes nothing at all.
        a = AutoTuner(bowl_run, BOWL_AXES, seed=1).tune()
        b = AutoTuner(bowl_run, BOWL_AXES, seed=2).tune()
        assert a.sequence == b.sequence


class TestBudget:
    @pytest.mark.parametrize("budget", [1, 2, 5, 10])
    def test_never_exceeds_budget(self, budget):
        tuner = AutoTuner(bowl_run, BOWL_AXES, budget=budget)
        result = tuner.tune()
        assert result.evals <= budget
        assert len(tuner.records) == result.evals
        assert result.best.valid

    def test_budget_caps_the_fallback_too(self):
        tuner = AutoTuner(disagreeing_run, DISAGREE_AXES, budget=10)
        result = tuner.tune()
        assert result.fallback
        assert result.evals <= 10
        assert any(d.endswith("budget-truncated")
                   for d in tuner.decisions)

    def test_uncapped_has_no_truncation(self):
        tuner = AutoTuner(bowl_run, BOWL_AXES)
        tuner.tune()
        assert not any("budget-truncated" in d for d in tuner.decisions)


class TestFallback:
    def test_disagreeing_diagnoses_trigger_full_grid(self):
        tuner = AutoTuner(disagreeing_run, DISAGREE_AXES)
        result = tuner.tune()
        assert result.fallback
        assert result.diagnosis == ""
        assert "disagree" in result.reason
        # The fallback is the exhaustive sweep: every cell evaluated,
        # so the optimum is exact by construction.
        assert result.evals == len(grid_configs(**DISAGREE_AXES))
        assert result.best.config == {"x": 4, "y": 1}
        assert any(d.startswith("fallback:") for d in tuner.decisions)

    def test_quorum_zero_disables_the_fallback(self):
        result = AutoTuner(disagreeing_run, DISAGREE_AXES,
                           quorum=0.0).tune()
        assert not result.fallback
        assert result.diagnosis in ("latency", "issue", "bandwidth")
        assert result.evals < len(grid_configs(**DISAGREE_AXES))

    def test_profile_less_runner_falls_back(self):
        def bare(config):
            record = bowl_run(config)
            record.profiles[:] = []
            return record

        result = AutoTuner(bare, BOWL_AXES).tune()
        assert result.fallback
        assert "profile" in result.reason
        assert result.best.config == {"x": 6, "y": 1}

    def test_all_probes_invalid_falls_back(self):
        def diagonal_breaks(config):
            if config["x"] == config["y"]:
                raise ValueError("diagonal cell cannot launch")
            return bowl_run(config)

        # probes land on (0,0), (2,2), (4,4): all invalid.
        tuner = AutoTuner(diagonal_breaks, DISAGREE_AXES)
        result = tuner.tune()
        assert result.fallback
        assert result.reason == "all probes invalid"
        assert result.best.valid
        assert result.best.config["x"] != result.best.config["y"]
        assert sum(not r.valid for r in tuner.records) == 5

    def test_single_fault_class_reraised_typed(self):
        def faulted(config):
            raise CompileFault("injected: nvcc.compile")

        with pytest.raises(CompileFault):
            AutoTuner(faulted, {"x": [1, 2], "y": [1, 2]}).tune()


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"probes": 0}, {"extra_probes": -1}, {"budget": 0},
        {"patience": 0}, {"quorum": 1.5}, {"quorum": -0.1},
        {"rules": {"latency": ("zz",)}},
    ])
    def test_bad_options_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoTuner(bowl_run, BOWL_AXES, **kwargs)

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(bowl_run, {})
        with pytest.raises(ValueError):
            AutoTuner(bowl_run, {"x": []})


class TestDiagnose:
    def test_low_occupancy_by_pressure_is_occupancy(self):
        assert diagnose(make_profile(
            occupancy=0.3, occupancy_limit="registers")) == "occupancy"
        assert diagnose(make_profile(
            occupancy=0.3,
            occupancy_limit="shared memory")) == "occupancy"

    def test_low_occupancy_by_warps_is_not(self):
        # warp/block-capped occupancy is not a specialization knob.
        assert diagnose(make_profile(
            occupancy=0.3, occupancy_limit="warps",
            bound="issue")) == "issue"

    def test_divergence_ratio(self):
        assert diagnose(make_profile(
            instructions=100, divergent_branches=6)) == "divergence"
        assert diagnose(make_profile(
            instructions=100, divergent_branches=5,
            bound="bandwidth")) == "bandwidth"

    def test_bound_passthrough_and_unknown(self):
        for bound in ("bandwidth", "latency", "issue"):
            assert diagnose(make_profile(bound=bound)) == bound
        assert diagnose(make_profile(bound="???")) == "issue"

    def test_app_rules_name_real_axes(self):
        for app, (problem, axes) in APP_GRIDS.items():
            for label, order in APP_RULES[app].items():
                assert set(order) == set(axes), (app, label)


# ---------------------------------------------------------------------
# Limiter distribution views (the diagnosis inputs, independently).
# ---------------------------------------------------------------------

class TestLimiterReport:
    def test_exact_counts_on_synthetic_records(self):
        profiles_by_cell = {
            1: [make_profile(occupancy_limit="registers",
                             bound="issue"),
                make_profile(occupancy_limit="warps",
                             bound="latency")],
            2: [make_profile(occupancy_limit="registers",
                             bound="bandwidth")],
            3: [],
        }

        def run(config):
            return SweepRecord(
                config=dict(config), seconds=1.0,
                profiles=list(profiles_by_cell[config["n"]]))

        sweeper = Sweeper(run)
        sweeper.sweep(grid_configs(n=[1, 2, 3]))
        assert sweeper.limiter_report() == {
            "occupancy_limit": {"registers": 2, "warps": 1},
            "bound": {"issue": 1, "latency": 1, "bandwidth": 1},
        }

    def test_untraced_records_contribute_nothing(self):
        def run(config):
            return SweepRecord(config=dict(config), seconds=1.0)

        sweeper = Sweeper(run)
        sweeper.sweep(grid_configs(n=[1, 2]))
        assert sweeper.limiter_report() == {"occupancy_limit": {},
                                            "bound": {}}

    def test_tuner_limiter_counters_exact(self):
        tuner = AutoTuner(bowl_run, BOWL_AXES)
        tuner.tune()
        # Three diagonal probes, all diagnosable, all latency-bound.
        assert tuner.metrics.counters("tuner.limiter.") == {
            "tuner.limiter.latency": 3}
        snapshot = tuner.metrics.snapshot()
        assert snapshot["gauges"]["tuner.evals"] == tuner.result.evals
        assert snapshot["gauges"]["tuner.grid"] == len(
            grid_configs(**BOWL_AXES))

    def test_real_app_limiters_are_in_vocabulary(self, tuned):
        tuner = tuned("piv")
        report = tuner.sweeper.limiter_report()
        total = sum(len(r.profiles) for r in tuner.records)
        assert total > 0
        assert sum(report["occupancy_limit"].values()) == total
        assert sum(report["bound"].values()) == total
        assert set(report["occupancy_limit"]) <= {
            "warps", "blocks", "registers", "shared memory"}
        assert set(report["bound"]) <= {"issue", "bandwidth", "latency"}
        labelled = [d for d in tuner.result.diagnoses if d.label]
        counters = tuner.metrics.counters("tuner.limiter.")
        assert sum(counters.values()) == len(labelled)

"""Functional tests: compile small kernels and compare against NumPy."""

import numpy as np
import pytest

from tests.helpers import run_kernel

rng = np.random.default_rng(42)


class TestArithmetic:
    def test_vector_add(self):
        src = """
        __global__ void vadd(const float* a, const float* b, float* c,
                             int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) c[i] = a[i] + b[i];
        }
        """
        n = 1000
        a = rng.random(n).astype(np.float32)
        b = rng.random(n).astype(np.float32)
        c = np.zeros(n, np.float32)
        (a_, b_, c_), _ = run_kernel(src, 8, 128, a, b, c, n)
        np.testing.assert_array_equal(c_, a + b)

    def test_saxpy(self):
        src = """
        __global__ void saxpy(float alpha, const float* x, float* y,
                              int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) y[i] = alpha * x[i] + y[i];
        }
        """
        n = 257
        x = rng.random(n).astype(np.float32)
        y = rng.random(n).astype(np.float32)
        expected = np.float32(2.5) * x + y
        (x_, y_), _ = run_kernel(src, 3, 96, np.float32(2.5), x, y, n)
        np.testing.assert_allclose(y_, expected, rtol=1e-6)

    def test_integer_ops(self):
        src = """
        __global__ void iops(const int* a, const int* b, int* out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                out[i] = (a[i] * b[i]) + (a[i] - b[i]) - (a[i] & b[i])
                       + (a[i] | b[i]) + (a[i] ^ b[i]);
            }
        }
        """
        n = 128
        a = rng.integers(-1000, 1000, n, dtype=np.int32)
        b = rng.integers(-1000, 1000, n, dtype=np.int32)
        out = np.zeros(n, np.int32)
        (_, _, out_), _ = run_kernel(src, 1, 128, a, b, out, n)
        expected = (a * b) + (a - b) - (a & b) + (a | b) + (a ^ b)
        np.testing.assert_array_equal(out_, expected)

    def test_division_c_semantics(self):
        """Integer division must truncate toward zero, as in C."""
        src = """
        __global__ void divk(const int* a, const int* b, int* q, int* r,
                             int n) {
            int i = threadIdx.x;
            if (i < n) { q[i] = a[i] / b[i]; r[i] = a[i] % b[i]; }
        }
        """
        a = np.array([7, -7, 7, -7, 100, -100], dtype=np.int32)
        b = np.array([2, 2, -2, -2, 3, 3], dtype=np.int32)
        q = np.zeros(6, np.int32)
        r = np.zeros(6, np.int32)
        (_, _, q_, r_), _ = run_kernel(src, 1, 32, a, b, q, r, 6)
        np.testing.assert_array_equal(q_, [3, -3, -3, 3, 33, -33])
        np.testing.assert_array_equal(r_, [1, -1, 1, -1, 1, -1])

    def test_unsigned_arithmetic_wraps(self):
        src = """
        __global__ void wrap(unsigned int* out) {
            unsigned int big = 4294967295u;
            out[threadIdx.x] = big + 2u;
        }
        """
        out = np.zeros(4, np.uint32)
        (out_,), _ = run_kernel(src, 1, 4, out)
        np.testing.assert_array_equal(out_, [1, 1, 1, 1])

    def test_shifts(self):
        src = """
        __global__ void sh(const int* a, int* out, unsigned int* uout) {
            int i = threadIdx.x;
            out[i] = a[i] >> 2;
            uout[i] = ((unsigned int)a[i]) >> 2;
        }
        """
        a = np.array([-8, 8, -1, 1024], dtype=np.int32)
        out = np.zeros(4, np.int32)
        uout = np.zeros(4, np.uint32)
        (_, out_, uout_), _ = run_kernel(src, 1, 4, a, out, uout)
        np.testing.assert_array_equal(out_, a >> 2)
        np.testing.assert_array_equal(uout_, a.view(np.uint32) >> 2)

    def test_math_builtins(self):
        src = """
        __global__ void mathk(const float* x, float* out, int n) {
            int i = threadIdx.x;
            if (i < n)
                out[i] = sqrtf(fabsf(x[i])) + fminf(x[i], 0.5f)
                       + floorf(x[i]) + ceilf(x[i]);
        }
        """
        n = 64
        x = (rng.random(n).astype(np.float32) - 0.5) * 10
        out = np.zeros(n, np.float32)
        (_, out_), _ = run_kernel(src, 1, 64, x, out, n)
        expected = (np.sqrt(np.abs(x)) + np.minimum(x, np.float32(0.5))
                    + np.floor(x) + np.ceil(x))
        np.testing.assert_allclose(out_, expected, rtol=1e-6)

    def test_mul24(self):
        src = """
        __global__ void m24(const int* a, const int* b, int* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = __mul24(a[i], b[i]);
        }
        """
        a = rng.integers(-(2**20), 2**20, 32, dtype=np.int32)
        b = rng.integers(-1000, 1000, 32, dtype=np.int32)
        out = np.zeros(32, np.int32)
        (_, _, out_), _ = run_kernel(src, 1, 32, a, b, out, 32)
        np.testing.assert_array_equal(out_, (a.astype(np.int64)
                                             * b).astype(np.int32))

    def test_ternary_selp(self):
        src = """
        __global__ void sel(const float* x, float* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = x[i] > 0.5f ? x[i] : 1.0f - x[i];
        }
        """
        x = rng.random(40).astype(np.float32)
        out = np.zeros(40, np.float32)
        (_, out_), _ = run_kernel(src, 1, 64, x, out, 40)
        np.testing.assert_allclose(
            out_, np.where(x > 0.5, x, np.float32(1.0) - x), rtol=1e-6)

    def test_float_double_conversion(self):
        src = """
        __global__ void conv(const float* x, double* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = (double)x[i] * 2.0;
        }
        """
        x = rng.random(16).astype(np.float32)
        out = np.zeros(16, np.float64)
        (_, out_), _ = run_kernel(src, 1, 16, x, out, 16)
        np.testing.assert_allclose(out_, x.astype(np.float64) * 2.0)

    def test_float_to_int_truncates(self):
        src = """
        __global__ void f2i(const float* x, int* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = (int)x[i];
        }
        """
        x = np.array([1.9, -1.9, 0.5, -0.5], dtype=np.float32)
        out = np.zeros(4, np.int32)
        (_, out_), _ = run_kernel(src, 1, 4, x, out, 4)
        np.testing.assert_array_equal(out_, [1, -1, 0, 0])


class TestThreadGeometry:
    def test_2d_block(self):
        src = """
        __global__ void grid2d(int* out, int width) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            out[y * width + x] = y * 1000 + x;
        }
        """
        out = np.zeros(32 * 16, np.int32)
        (out_,), _ = run_kernel(src, (4, 4), (8, 4), out, 32)
        xs, ys = np.meshgrid(np.arange(32), np.arange(16))
        np.testing.assert_array_equal(out_.reshape(16, 32),
                                      ys * 1000 + xs)

    def test_partial_warp(self):
        """Blocks whose size is not a multiple of 32 must still work."""
        src = """
        __global__ void pw(int* out) {
            out[blockIdx.x * blockDim.x + threadIdx.x] = threadIdx.x;
        }
        """
        out = np.full(2 * 17, -1, np.int32)
        (out_,), _ = run_kernel(src, 2, 17, out)
        np.testing.assert_array_equal(out_.reshape(2, 17),
                                      np.tile(np.arange(17), (2, 1)))

    def test_grid_dim_builtin(self):
        src = """
        __global__ void gd(int* out) {
            if (threadIdx.x == 0) out[blockIdx.x] = gridDim.x;
        }
        """
        out = np.zeros(5, np.int32)
        (out_,), _ = run_kernel(src, 5, 32, out)
        np.testing.assert_array_equal(out_, [5] * 5)


class TestLoops:
    def test_runtime_loop(self):
        src = """
        __global__ void loop(const float* x, float* out, int n) {
            float acc = 0.0f;
            for (int i = 0; i < n; i++) acc += x[i];
            out[threadIdx.x] = acc;
        }
        """
        x = rng.random(37).astype(np.float32)
        out = np.zeros(1, np.float32)
        (_, out_), _ = run_kernel(src, 1, 1, x, out, 37)
        np.testing.assert_allclose(out_[0], np.sum(x), rtol=1e-5)

    def test_while_loop(self):
        src = """
        __global__ void wl(int* out, int n) {
            int v = n;
            int steps = 0;
            while (v > 1) {
                if (v % 2 == 0) v = v / 2; else v = 3 * v + 1;
                steps++;
            }
            out[threadIdx.x] = steps;
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out, 27)
        assert out_[0] == 111  # Collatz steps for 27

    def test_do_while(self):
        src = """
        __global__ void dw(int* out) {
            int i = 0;
            do { i++; } while (i < 5);
            out[threadIdx.x] = i;
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        assert out_[0] == 5

    def test_break_and_continue(self):
        src = """
        __global__ void bc(const int* x, int* out, int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (x[i] < 0) break;
                if (x[i] % 2 == 1) continue;
                acc += x[i];
            }
            out[threadIdx.x] = acc;
        }
        """
        x = np.array([2, 3, 4, 6, -1, 8], dtype=np.int32)
        out = np.zeros(1, np.int32)
        (_, out_), _ = run_kernel(src, 1, 1, x, out, 6)
        assert out_[0] == 2 + 4 + 6

    def test_nested_loops(self):
        src = """
        __global__ void nest(int* out, int n) {
            int acc = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j <= i; j++)
                    acc += 1;
            out[threadIdx.x] = acc;
        }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out, 10)
        assert out_[0] == 55


class TestDeviceFunctions:
    def test_inline_call(self):
        src = """
        __device__ float square(float x) { return x * x; }
        __global__ void k(const float* a, float* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = square(a[i]) + square(2.0f);
        }
        """
        a = rng.random(16).astype(np.float32)
        out = np.zeros(16, np.float32)
        (_, out_), _ = run_kernel(src, 1, 16, a, out, 16)
        np.testing.assert_allclose(out_, a * a + 4.0, rtol=1e-6)

    def test_early_return_in_device_fn(self):
        src = """
        __device__ int clampz(int x, int hi) {
            if (x < 0) return 0;
            if (x > hi) return hi;
            return x;
        }
        __global__ void k(const int* a, int* out, int n) {
            int i = threadIdx.x;
            if (i < n) out[i] = clampz(a[i], 10);
        }
        """
        a = np.array([-5, 3, 20, 10, 0], dtype=np.int32)
        out = np.zeros(5, np.int32)
        (_, out_), _ = run_kernel(src, 1, 32, a, out, 5)
        np.testing.assert_array_equal(out_, [0, 3, 10, 10, 0])

    def test_nested_device_calls(self):
        src = """
        __device__ int dbl(int x) { return x + x; }
        __device__ int quad(int x) { return dbl(dbl(x)); }
        __global__ void k(int* out) { out[0] = quad(3); }
        """
        out = np.zeros(1, np.int32)
        (out_,), _ = run_kernel(src, 1, 1, out)
        assert out_[0] == 12

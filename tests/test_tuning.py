"""Tuning/sweep machinery tests."""

import numpy as np
import pytest

from repro.apps.piv import PIVProblem
from repro.data.piv import particle_image_pair
from repro.gpusim import TESLA_C1060, TESLA_C2070
from repro.tuning import (best_record, contour_series, percent_of_peak,
                          peak_grid_text, piv_sweep)
from repro.tuning.sweep import SweepRecord, Sweeper, grid_configs


class TestSweeper:
    def test_grid_configs_cartesian(self):
        configs = grid_configs(a=[1, 2], b=["x", "y", "z"])
        assert len(configs) == 6
        assert {(c["a"], c["b"]) for c in configs} == \
            {(a, b) for a in (1, 2) for b in "xyz"}

    def test_failures_recorded_not_raised(self):
        def run(config):
            if config["n"] == 2:
                raise RuntimeError("occupancy")
            return SweepRecord(config=config, seconds=config["n"])

        records = Sweeper(run).sweep(grid_configs(n=[1, 2, 3]))
        assert len(records) == 3
        assert not records[1].valid
        assert best_record(records).config["n"] == 1

    def test_best_of_empty_raises(self):
        with pytest.raises(ValueError):
            best_record([SweepRecord(config={}, seconds=1.0,
                                     valid=False, error="x")])

    def test_best_of_all_invalid_groups_every_error_class(self):
        records = [
            SweepRecord(config={"n": 1}, seconds=1.0, valid=False,
                        error="SimError: grid too large"),
            SweepRecord(config={"n": 2}, seconds=1.0, valid=False,
                        error="SimError: zero occupancy"),
            SweepRecord(config={"n": 3}, seconds=1.0, valid=False,
                        error="CompileError: parse error"),
        ]
        with pytest.raises(ValueError) as err:
            best_record(records)
        message = str(err.value)
        # Every distinct error class appears, counted, with an example.
        assert "3 tried" in message
        assert "SimError x2" in message
        assert "CompileError x1" in message
        assert "parse error" in message

    def test_error_taxonomy_counts_by_class(self):
        def run(config):
            if config["n"] == 1:
                raise RuntimeError("boom")
            if config["n"] == 2:
                raise ValueError("bad shape")
            return SweepRecord(config=config, seconds=1.0)

        sweeper = Sweeper(run)
        sweeper.sweep(grid_configs(n=[1, 2, 3, 1]))
        assert sweeper.error_taxonomy() == {"RuntimeError": 2,
                                            "ValueError": 1}

    def test_cache_report_attribution_under_concurrent_sweeps(self):
        # Each Sweeper owns a private ExecutionContext, so two sweeps
        # overlapping in time report *exactly* their own plan/gang
        # traffic — equal to what the same sweep reports when run
        # alone, with no cross-attribution.
        import threading

        from repro.apps.piv import (PIVConfig, PIVProblem, PIVProcessor)
        from repro.gpusim import GPU

        problem = PIVProblem("cc", 40, 40, mask=8, offs=3)
        img_a, img_b = particle_image_pair(40, 40, seed=1)

        def make_run(barrier=None):
            def run(config):
                if barrier is not None:
                    barrier.wait()  # force the two sweeps to overlap
                proc = PIVProcessor(problem,
                                    PIVConfig(rb=config["rb"],
                                              threads=32),
                                    gpu=GPU(TESLA_C2070,
                                            memory_bytes=4 << 20))
                result = proc.run(img_a, img_b)
                return SweepRecord(config=config, seconds=1.0,
                                   valid=result.scores is not None)
            return run

        # Baseline: the exact counters one such sweep produces alone.
        solo = Sweeper(make_run())
        solo.sweep(grid_configs(rb=[2, 4]))
        assert all(r.valid for r in solo.records)
        baseline = solo.cache_report
        assert baseline["plan_misses"] > 0

        barrier = threading.Barrier(2)
        sweepers = [Sweeper(make_run(barrier)) for _ in range(2)]
        threads = [threading.Thread(
            target=lambda s=s: s.sweep(grid_configs(rb=[2, 4])))
            for s in sweepers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for sweeper in sweepers:
            assert all(r.valid for r in sweeper.records)
            assert sweeper.cache_report == baseline


class TestOrderingContracts:
    """Ordering pins for pruned (sparse, non-grid-ordered) record
    lists — what the AutoTuner's multi-batch sweeps feed these APIs."""

    @staticmethod
    def _sparse_ties():
        # Equal modeled seconds on a sparse, non-grid-ordered subset.
        return [
            SweepRecord(config={"rb": 4, "threads": 64}, seconds=2.0),
            SweepRecord(config={"rb": 1, "threads": 128}, seconds=2.0),
            SweepRecord(config={"rb": 2, "threads": 32}, seconds=3.0),
            SweepRecord(config={"rb": 8, "threads": 32}, seconds=3.0),
        ]

    def test_best_record_tie_break_is_order_independent(self):
        import itertools
        for perm in itertools.permutations(self._sparse_ties()):
            best = best_record(list(perm))
            # Smallest config key among the equal-seconds fastest.
            assert best.config == {"rb": 1, "threads": 128}

    def test_slowest_report_tie_order_is_order_independent(self):
        import itertools
        reports = set()
        for perm in itertools.permutations(self._sparse_ties()):
            sweeper = Sweeper(lambda c: SweepRecord(config=c,
                                                    seconds=0.0))
            sweeper.records = list(perm)
            reports.add(sweeper.slowest_report(3))
        assert len(reports) == 1
        lines = reports.pop().splitlines()
        # Worst first; the 3.0 s tie resolves by config key (rb=2
        # before rb=8), independent of record order.
        assert "rb=2" in lines[3] and "rb=8" in lines[4]

    def test_indices_continue_across_sweep_calls(self):
        # The tuner sweeps in several small batches over one Sweeper;
        # indices must keep counting (aliasing used to re-start at 0,
        # which scrambled slowest_report cell ids and trace grafts).
        def run(config):
            return SweepRecord(config=config,
                               seconds=float(config["n"]))

        sweeper = Sweeper(run, jobs=2)
        sweeper.sweep(grid_configs(n=[3, 1]))
        sweeper.sweep(grid_configs(n=[2]))
        sweeper.sweep(grid_configs(n=[5, 4]))
        assert [r.index for r in sweeper.records] == [0, 1, 2, 3, 4]
        assert [r.config["n"] for r in sweeper.records] == \
            [3, 1, 2, 5, 4]
        assert best_record(sweeper.records).index == 1


class TestGrids:
    def _records(self):
        data = {(1, 32): 4.0, (1, 64): 2.0, (2, 32): 1.0, (2, 64): 2.0}
        return [SweepRecord(config={"rb": rb, "threads": t}, seconds=s)
                for (rb, t), s in data.items()]

    def test_percent_of_peak(self):
        rows, cols, grid = percent_of_peak(self._records(), "rb",
                                           "threads")
        assert rows == [1, 2] and cols == [32, 64]
        assert grid[1][0] == 100.0
        assert grid[0][0] == 25.0

    def test_invalid_cells_are_none(self):
        records = self._records()
        records.append(SweepRecord(config={"rb": 4, "threads": 32},
                                   seconds=float("inf"), valid=False))
        records.append(SweepRecord(config={"rb": 4, "threads": 64},
                                   seconds=3.0))
        rows, cols, grid = percent_of_peak(records, "rb", "threads")
        assert grid[2][0] is None and grid[2][1] is not None

    def test_grid_text_shape(self):
        headers, body = peak_grid_text(self._records(), "rb", "threads")
        assert headers[0].startswith("rb")
        assert len(body) == 2 and len(body[0]) == 3

    def test_contour_series(self):
        series = contour_series(self._records(), "rb", "threads")
        assert series[0][0] == 1
        assert series[1][1][0] == (32, 100.0)


class TestPIVSweepIntegration:
    def test_sweep_finds_interior_optimum(self):
        problem = PIVProblem("t", 48, 64, mask=8, offs=5)
        a, b = particle_image_pair(48, 64, seed=0)
        records = piv_sweep(problem, TESLA_C2070, a, b,
                            rb_values=[1, 4], thread_values=[32, 64])
        assert len(records) == 4
        assert all(r.valid for r in records)
        best = best_record(records)
        assert best.seconds <= min(r.seconds for r in records)

    def test_unlaunchable_configs_survive_as_invalid(self):
        """rb=16 at 512 threads exceeds the C1060 register file."""
        problem = PIVProblem("t", 48, 64, mask=8, offs=5)
        a, b = particle_image_pair(48, 64, seed=0)
        records = piv_sweep(problem, TESLA_C1060, a, b,
                            rb_values=[16], thread_values=[512])
        assert len(records) == 1
        assert not records[0].valid
        assert "Occupancy" in records[0].error or \
            "occupancy" in records[0].error.lower() or records[0].error

"""Seeded chaos suite: fault plans swept over the GPU-PF stack.

The robustness contract (the SK→RE story under failure):

* any run that *completes* under a seeded :class:`FaultPlan` produces
  results bit-identical to the fault-free run;
* any run that *fails* raises a typed error — a :class:`FaultError`
  subclass or a :class:`PipelineError` naming the fault site — never a
  bare ``Exception``;
* compile faults below the retry budget are absorbed; a hard SK
  compile failure completes via the RE degradation ladder with the
  event recorded in ``Pipeline.health_report()``; faults above budget
  raise :class:`PipelineFaultError`.
"""

import os
import signal
import threading
from dataclasses import dataclass

import numpy as np
import pytest

from repro.apps.backprojection import Backprojector, BPConfig, BPProblem
from repro.apps.piv import PIVConfig, PIVProblem, PIVProcessor
from repro.apps.template_matching import (MatchConfig, MatchProblem,
                                          TemplateMatcher)
from repro.data.frames import template_sequence
from repro.data.piv import particle_image_pair
from repro.faults import (FAULT_SITES, CompileFault, DeviceOOM, ECCError,
                          FaultError, FaultInjector, FaultPlan,
                          LaunchFault, RetryPolicy, WatchdogTimeout,
                          injecting, retry_call)
from repro.faults import hooks as fault_hooks
from repro.gpupf import (KernelCache, Pipeline, PipelineError,
                         PipelineFaultError)
from repro.gpusim import GPU, TESLA_C2070
from repro.kernelc.compiler import CompileError, nvcc
from repro.kernelc.templates import ctrt_block

# ---------------------------------------------------------------------
# Small app workloads (chaos runs pay a fresh compile per run, so the
# problems are deliberately tiny).
# ---------------------------------------------------------------------

PIV_PROBLEM = PIVProblem("chaos", 40, 40, mask=8, offs=3)
BP_PROBLEM = BPProblem("chaos", nx=8, ny=8, nz=6, n_proj=4, det_u=12,
                       det_v=10)
TM_PROBLEM = MatchProblem("chaos", frame_h=60, frame_w=80, tmpl_h=16,
                          tmpl_w=12, shift_h=5, shift_w=5, n_frames=1)


def run_piv_app():
    img_a, img_b = particle_image_pair(PIV_PROBLEM.img_h,
                                       PIV_PROBLEM.img_w, seed=3)
    proc = PIVProcessor(PIV_PROBLEM, PIVConfig(rb=2, threads=32),
                        gpu=GPU(TESLA_C2070, memory_bytes=4 << 20),
                        cache=KernelCache())
    return proc.run(img_a, img_b).scores


def run_bp_app():
    rng = np.random.default_rng(5)
    projections = rng.random((BP_PROBLEM.n_proj, BP_PROBLEM.det_v,
                              BP_PROBLEM.det_u)).astype(np.float32)
    bp = Backprojector(BP_PROBLEM, BPConfig(block_x=8, block_y=4, zb=2),
                       gpu=GPU(TESLA_C2070, memory_bytes=4 << 20),
                       cache=KernelCache())
    return bp.run(projections).volume


def run_tm_app():
    frames, tmpl, _ = template_sequence(
        TM_PROBLEM.frame_h, TM_PROBLEM.frame_w, TM_PROBLEM.tmpl_h,
        TM_PROBLEM.tmpl_w, TM_PROBLEM.shift_h, TM_PROBLEM.shift_w,
        n_frames=1, seed=2)
    matcher = TemplateMatcher(TM_PROBLEM, tmpl,
                              MatchConfig(tile_w=8, tile_h=8,
                                          threads=32),
                              gpu=GPU(TESLA_C2070,
                                      memory_bytes=4 << 20),
                              cache=KernelCache())
    return matcher.match(frames[0]).ncc


APPS = {"piv": run_piv_app, "backprojection": run_bp_app,
        "template_matching": run_tm_app}


@pytest.fixture(scope="module")
def baselines():
    assert fault_hooks.ACTIVE is None
    return {name: run() for name, run in APPS.items()}


# ---------------------------------------------------------------------
# The scale pipeline used by the targeted resilience tests.
# ---------------------------------------------------------------------

SCALE_SRC = ctrt_block({"FACTOR": "factor"}) + """
__global__ void scale(const float* in, float* out, int n, int factor) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = in[i] * (float)FACTOR_VAL;
}
"""


def build_scale_pipeline(specialize=True, retry=None, engine=None,
                         cache=None):
    gpu = GPU(TESLA_C2070, memory_bytes=1 << 20)
    pipe = Pipeline(gpu, "scale", cache=cache or KernelCache(),
                    retry=retry, engine=engine)
    n = pipe.int_param("n", 256)
    factor = pipe.int_param("factor", 3)
    extent = pipe.extent_param("buf", (256,), 4)
    defines = {"CT_FACTOR": 1, "FACTOR": factor} if specialize else {}
    mod = pipe.module("mod", SCALE_SRC, defines=defines)
    k = pipe.kernel("scale", mod)
    h_in = pipe.host_memory("h_in", extent)
    h_out = pipe.host_memory("h_out", extent)
    d_in = pipe.global_memory("d_in", extent)
    d_out = pipe.global_memory("d_out", extent)
    pipe.copy("upload", h_in, d_in)
    pipe.kernel_exec("run", k, (2, 1, 1), (128, 1, 1),
                     [d_in, d_out, n, factor])
    pipe.copy("download", d_out, h_out)
    return pipe


SCALE_DATA = np.arange(256, dtype=np.float32) / 7.0


def run_scale(pipe):
    pipe.refresh()
    pipe.resources["h_in"].array[:] = SCALE_DATA
    pipe.run(1)
    return pipe.resources["h_out"].array.copy()


@pytest.fixture(scope="module")
def scale_baseline():
    assert fault_hooks.ACTIVE is None
    return run_scale(build_scale_pipeline())


# ---------------------------------------------------------------------
# Chaos sweep: seeded plans over all three applications.
# ---------------------------------------------------------------------

CHAOS_RATES = {"nvcc.compile": 0.25, "nvcc.timeout": 0.1,
               "launch.fail": 0.15, "launch.watchdog": 0.15,
               "memory.bitflip": 0.1}


class TestChaosSweep:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_complete_runs_are_bit_identical(self, app, seed,
                                             baselines):
        plan = FaultPlan(seed=seed, rates=CHAOS_RATES)
        with injecting(plan) as injector:
            try:
                result = APPS[app]()
            except (FaultError, PipelineError) as exc:
                # Typed failure: a named fault site must be attached.
                site = getattr(exc, "site", None)
                assert site in FAULT_SITES
                return
        np.testing.assert_array_equal(result, baselines[app])
        # Whatever fired was absorbed (or nothing fired): both are
        # legitimate completions; the injector kept the evidence.
        assert all(e.site in FAULT_SITES for e in injector.events)

    def test_same_plan_same_outcome(self):
        def once():
            plan = FaultPlan(seed=11, rates=CHAOS_RATES)
            with injecting(plan) as injector:
                try:
                    out = run_piv_app()
                    failure = None
                except (FaultError, PipelineError) as exc:
                    out, failure = None, type(exc).__name__
                events = [(e.site, e.action, e.visit)
                          for e in injector.events]
            return out, failure, events

        out1, fail1, events1 = once()
        out2, fail2, events2 = once()
        assert fail1 == fail2
        assert events1 == events2
        if out1 is not None:
            np.testing.assert_array_equal(out1, out2)

    def test_injection_disabled_by_default(self):
        assert fault_hooks.ACTIVE is None

    def test_nested_install_rejected(self):
        with injecting(FaultPlan(seed=0)):
            with pytest.raises(RuntimeError):
                fault_hooks.install(FaultPlan(seed=1))
        assert fault_hooks.ACTIVE is None


# ---------------------------------------------------------------------
# Chaos under the profile-guided tuner: the same contract, one level
# up — a tuner that completes under a seeded plan must match the
# fault-free tuner bit-for-bit; one that cannot raises typed.
# ---------------------------------------------------------------------

class TestAutotuneChaos:
    TM_AXES = {"tile": [(8, 8), (16, 8)], "threads": [32, 64]}

    @staticmethod
    def _tune(app, problem, axes, fault_plan=None):
        from repro.tuning import harness_autotune
        return harness_autotune(app, problem, axes, seed=11,
                                memory_bytes=8 << 20,
                                fault_plan=fault_plan)

    def test_absorbed_faults_leave_tuner_bit_identical(self):
        # One compile fault per evaluation, absorbed by the TM compile
        # retry budget: every record still carries identical modeled
        # results, so the tuner takes the identical search path.
        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        clean = self._tune("template_matching", TM_PROBLEM,
                           self.TM_AXES)
        chaotic = self._tune("template_matching", TM_PROBLEM,
                             self.TM_AXES, fault_plan=plan)
        assert [(r.index, r.config, r.seconds, r.valid, r.error)
                for r in chaotic.records] == \
            [(r.index, r.config, r.seconds, r.valid, r.error)
             for r in clean.records]
        assert chaotic.decisions == clean.decisions
        assert chaotic.result.sequence == clean.result.sequence
        assert chaotic.result.best.key() == clean.result.best.key()
        # This was not a fault-free run: the injector fired per cell.
        assert all(r.faults.get("nvcc.compile")
                   for r in chaotic.records)

    def test_hard_faults_raise_typed_from_tuner(self):
        # PIV compiles outside any retry wrapper: every evaluation
        # fails the same way, and the tuner re-raises it typed rather
        # than returning a best_record of nothing.
        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        with pytest.raises(CompileFault):
            self._tune("piv", PIV_PROBLEM,
                       {"rb": [1, 2], "threads": [32, 64]},
                       fault_plan=plan)


# ---------------------------------------------------------------------
# The degradation ladder, site by site.
# ---------------------------------------------------------------------

class TestDegradationLadder:
    def test_compile_faults_below_budget_bit_identical(
            self, scale_baseline):
        plan = FaultPlan(seed=1, counts={"nvcc.compile": 2})
        with injecting(plan):
            pipe = build_scale_pipeline(
                retry=RetryPolicy(max_attempts=3))
            out = run_scale(pipe)
        np.testing.assert_array_equal(out, scale_baseline)
        report = pipe.health_report()
        assert report["retries"]["nvcc.compile"] == 2
        assert report["degraded"] == {}

    def test_sk_hard_failure_degrades_to_re(self, scale_baseline):
        # Only specialized (CT_*) compiles fail; the RE fallback
        # compiles cleanly and produces the same results.
        plan = FaultPlan(seed=1, counts={"nvcc.compile": 99},
                         match={"nvcc.compile": "CT_"})
        with injecting(plan):
            pipe = build_scale_pipeline()
            out = run_scale(pipe)
        np.testing.assert_array_equal(out, scale_baseline)
        report = pipe.health_report()
        assert "mod" in report["degraded"]
        assert report["fallbacks"] == 1
        assert pipe.resources["mod"].degraded
        assert any("DEGRADED to RE" in line for line in pipe.log)

    def test_faults_above_budget_raise_typed_error(self):
        plan = FaultPlan(seed=1, counts={"nvcc.compile": 99})
        with injecting(plan):
            pipe = build_scale_pipeline()
            with pytest.raises(PipelineFaultError) as err:
                pipe.refresh()
        assert err.value.site == "nvcc.compile"
        assert "nvcc.compile" in str(err.value)
        assert isinstance(err.value, PipelineError)

    def test_unspecialized_module_has_no_ladder_step(self):
        plan = FaultPlan(seed=1, counts={"nvcc.compile": 99})
        with injecting(plan):
            pipe = build_scale_pipeline(specialize=False)
            with pytest.raises(PipelineFaultError) as err:
                pipe.refresh()
        assert err.value.site == "nvcc.compile"

    def test_genuine_compile_error_still_degrades(self, scale_baseline):
        # No injector at all: a bad specialization value breaks the SK
        # compile, and the ladder still lands on the RE variant.
        pipe = build_scale_pipeline()
        pipe.resources["mod"].defines["FACTOR"] = "][junk"
        out = run_scale(pipe)
        np.testing.assert_array_equal(out, scale_baseline)
        assert "mod" in pipe.health_report()["degraded"]


class TestLaunchResilience:
    @pytest.mark.parametrize("site,engine", [
        ("launch.fail", None),
        ("launch.watchdog", "batched"),
        ("launch.watchdog", "serial"),
        ("memory.bitflip", None),
    ])
    def test_transient_launch_faults_retried(self, site, engine,
                                             scale_baseline):
        plan = FaultPlan(seed=2, counts={site: 1})
        with injecting(plan) as injector:
            pipe = build_scale_pipeline(engine=engine)
            out = run_scale(pipe)
        np.testing.assert_array_equal(out, scale_baseline)
        report = pipe.health_report()
        assert report["retries"][site] == 1
        assert report["faults"][site] == 1
        assert [e.site for e in injector.events] == [site]

    def test_partial_execution_rolled_back(self, scale_baseline,
                                           monkeypatch):
        # Force 1-block batches, then kill the watchdog on the *second*
        # batch: batch one has already written device memory, so a
        # completed retry proves the snapshot/restore path works.
        monkeypatch.setenv("REPRO_SIM_BATCH", "1")
        plan = FaultPlan(seed=2, counts={"launch.watchdog": 1},
                         skips={"launch.watchdog": 1})
        with injecting(plan) as injector:
            pipe = build_scale_pipeline(engine="batched")
            out = run_scale(pipe)
        np.testing.assert_array_equal(out, scale_baseline)
        assert [e.site for e in injector.events] == ["launch.watchdog"]
        assert injector.events[0].visit == 2

    def test_faults_above_budget_raise_typed_error(self):
        plan = FaultPlan(seed=2, counts={"launch.fail": 99})
        with injecting(plan):
            pipe = build_scale_pipeline(
                retry=RetryPolicy(max_attempts=2))
            with pytest.raises(PipelineFaultError) as err:
                run_scale(pipe)
        assert err.value.site == "launch.fail"
        assert "launch.fail" in str(err.value)

    def test_oom_is_typed_and_named(self):
        plan = FaultPlan(seed=3, counts={"memory.oom": 1})
        with injecting(plan):
            pipe = build_scale_pipeline()
            with pytest.raises(PipelineFaultError) as err:
                pipe.refresh()
        assert err.value.site == "memory.oom"
        # Not transient: no retries were burned on it.
        assert pipe.health_report()["retries"] == {}


# ---------------------------------------------------------------------
# Disk-cache corruption and quarantine.
# ---------------------------------------------------------------------

class TestCacheCorruptionChaos:
    def test_injected_corruption_quarantined_then_rebuilt(
            self, tmp_path, scale_baseline):
        disk = str(tmp_path / "kcache")
        warm = KernelCache(disk_dir=disk)
        pipe = build_scale_pipeline(cache=warm)
        out = run_scale(pipe)
        np.testing.assert_array_equal(out, scale_baseline)
        mods = list(tmp_path.glob("kcache/*.mod"))
        assert mods, "warmup should have persisted a module"

        plan = FaultPlan(seed=4, counts={"cache.corrupt": 1})
        with injecting(plan):
            cold = KernelCache(disk_dir=disk)
            out = run_scale(build_scale_pipeline(cache=cold))
        np.testing.assert_array_equal(out, scale_baseline)
        stats = cold.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1  # recompiled after quarantine
        quarantined = list(tmp_path.glob("kcache/*.mod.corrupt"))
        assert len(quarantined) == 1

        # The rebuilt entry is clean: a third process-start reads it
        # without recompiling and without touching the quarantine.
        fresh = KernelCache(disk_dir=disk)
        out = run_scale(build_scale_pipeline(cache=fresh))
        np.testing.assert_array_equal(out, scale_baseline)
        stats = fresh.stats()
        assert stats["corrupt"] == 0 and stats["misses"] == 0
        assert stats["hits"] >= 1


# ---------------------------------------------------------------------
# Injector and retry primitives.
# ---------------------------------------------------------------------

class TestFaultPrimitives:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={"nvcc.compiel": 0.5})
        with pytest.raises(ValueError):
            FaultPlan(counts={"bogus": 1})

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={"nvcc.compile": 1.5})

    def test_counts_then_rates_deterministic(self):
        plan = FaultPlan(seed=9, counts={"launch.fail": 1},
                         rates={"launch.fail": 0.5})
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [self._fires(a, "launch.fail") for _ in range(30)]
        seq_b = [self._fires(b, "launch.fail") for _ in range(30)]
        assert seq_a == seq_b
        assert seq_a[0] is True  # the deterministic burst
        assert any(seq_a[1:]) and not all(seq_a[1:])  # the rate tail

    @staticmethod
    def _fires(injector, site):
        try:
            injector.check(site)
            return False
        except FaultError:
            return True

    def test_max_total_budget(self):
        plan = FaultPlan(seed=0, counts={"launch.fail": 99},
                         max_total=2)
        injector = FaultInjector(plan)
        fired = sum(self._fires(injector, "launch.fail")
                    for _ in range(10))
        assert fired == 2
        assert injector.total_fired == 2

    def test_match_filters_visits(self):
        plan = FaultPlan(seed=0, counts={"nvcc.compile": 99},
                         match={"nvcc.compile": "CT_"})
        injector = FaultInjector(plan)
        injector.check("nvcc.compile", detail="FOO,BAR")  # no CT_
        with pytest.raises(CompileFault):
            injector.check("nvcc.compile", detail="CT_FOO,FOO")

    def test_corrupt_bytes_breaks_pickle(self):
        import pickle
        plan = FaultPlan(seed=0, counts={"cache.corrupt": 1})
        injector = FaultInjector(plan)
        payload = pickle.dumps((2, {"some": "module"}))
        mangled = injector.corrupt_bytes("cache.corrupt", payload)
        assert mangled != payload
        with pytest.raises(Exception):
            pickle.loads(mangled)

    def test_retry_call_backoff_is_deterministic(self):
        sleeps_a, sleeps_b = [], []
        for sleeps in (sleeps_a, sleeps_b):
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 3:
                    raise LaunchFault("injected")
                return "ok"

            result, attempts = retry_call(
                flaky, policy=RetryPolicy(max_attempts=3, seed=5),
                sleep=sleeps.append)
            assert result == "ok" and attempts == 3
        assert sleeps_a == sleeps_b
        assert len(sleeps_a) == 2
        assert sleeps_a[1] > sleeps_a[0]  # exponential backoff

    def test_retry_call_does_not_retry_permanent_errors(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise DeviceOOM("injected")

        with pytest.raises(DeviceOOM):
            retry_call(broken, policy=RetryPolicy(max_attempts=5),
                       sleep=lambda s: None)
        assert calls["n"] == 1

        def miscompiled():
            calls["n"] += 1
            raise CompileError("parse error")

        with pytest.raises(CompileError):
            retry_call(miscompiled,
                       policy=RetryPolicy(max_attempts=5),
                       sleep=lambda s: None)
        assert calls["n"] == 2

    def test_injector_thread_safety(self):
        plan = FaultPlan(seed=0, rates={"launch.fail": 0.5})
        injector = FaultInjector(plan)
        fired = []

        def worker():
            hits = 0
            for _ in range(200):
                try:
                    injector.check("launch.fail")
                except FaultError:
                    hits += 1
            fired.append(hits)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.visits["launch.fail"] == 800
        assert sum(fired) == injector.total_fired
        assert len(injector.events) == injector.total_fired

    def test_nvcc_detail_targets_specialized_compiles(self):
        src = "__global__ void k(int* p) { p[0] = 1; }"
        plan = FaultPlan(seed=0, counts={"nvcc.compile": 99},
                         match={"nvcc.compile": "CT_"})
        with injecting(plan):
            nvcc(src)  # RE compile: no CT_ define, passes
            with pytest.raises(CompileFault):
                nvcc(src, defines={"CT_N": 1, "N": 4})


class TestHealthReport:
    def test_report_shape_and_cache_stats(self, scale_baseline):
        pipe = build_scale_pipeline()
        run_scale(pipe)
        report = pipe.health_report()
        assert report["pipeline"] == "scale"
        assert report["faults"] == {} and report["retries"] == {}
        assert report["degraded"] == {} and report["fallbacks"] == 0
        assert set(report["cache"]) == {"hits", "misses", "corrupt",
                                        "latch_timeouts"}
        assert report["cache"]["misses"] >= 1
        assert report["iterations"] == 1


# ---------------------------------------------------------------------
# Fleet chaos: a member's worker dies mid-shard.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class CrashOnceRunner:
    """Picklable grid evaluator whose chosen cell SIGKILLs its worker
    exactly once: the sentinel file is created *before* the kill, so
    the redispatched attempt sees it and completes normally."""

    sentinel: str
    crash_cell: int
    axis: str = "cell"

    def __call__(self, config):
        from repro.tuning.sweep import SweepRecord
        cell = config[self.axis]
        if cell == self.crash_cell and not os.path.exists(self.sentinel):
            open(self.sentinel, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        return SweepRecord(config=dict(config),
                           seconds=0.001 * (cell + 1))


class TestFleetChaos:
    """Kill one fleet worker mid-shard: the merged result is still
    bit-identical (redispatch absorbed the death) or a typed
    ``FleetWorkerError`` (budget exhausted) — never a hang or a bare
    exception."""

    CONFIGS = [{"cell": i} for i in range(4)]

    def baseline(self, run):
        from repro.tuning.sweep import Sweeper
        sweeper = Sweeper(run)
        return [(r.index, r.key(), r.seconds, r.valid)
                for r in sweeper.sweep(list(self.CONFIGS))]

    def test_transient_death_merges_bit_identical(self, tmp_path):
        from repro.runtime import DeviceFleet
        sentinel = str(tmp_path / "crashed-once")
        run = CrashOnceRunner(sentinel=sentinel, crash_cell=2)
        expected = self.baseline(
            CrashOnceRunner(sentinel=sentinel, crash_cell=-1))
        with DeviceFleet(["c2070"] * 2, pool="process",
                         max_redispatch=1) as fleet:
            records = fleet.map_grid(run, list(self.CONFIGS))
            got = [(r.index, r.key(), r.seconds, r.valid)
                   for r in records]
            assert got == expected
            counters = fleet.metrics.snapshot()["counters"]
            assert counters["fleet.worker_crash"] >= 1
            assert counters["fleet.redispatch"] >= 1
        assert os.path.exists(sentinel)  # the crash really happened

    def test_persistent_death_is_a_typed_record(self):
        from repro.serve import KamikazeRunner
        from repro.runtime import DeviceFleet
        run = KamikazeRunner(crash_cells=(1,))
        with DeviceFleet(["c2070"] * 2, pool="process",
                         max_redispatch=1) as fleet:
            records = fleet.map_grid(run, list(self.CONFIGS))
            by_cell = {r.config["cell"]: r for r in records}
            assert not by_cell[1].valid
            assert by_cell[1].error.startswith("FleetWorkerError")
            # survivors keep their results, in grid order
            for cell in (0, 2, 3):
                assert by_cell[cell].valid
                assert by_cell[cell].seconds == 0.001 * (cell + 1)
            assert [r.index for r in records] == [0, 1, 2, 3]
            assert fleet.metrics.snapshot()["counters"][
                "fleet.errors"] == 1

    def test_fleet_survives_for_further_work(self):
        """A revived member keeps serving after its worker died."""
        from repro.runtime import DeviceFleet
        from repro.serve import KamikazeRunner
        with DeviceFleet(["c2070"], pool="process",
                         max_redispatch=0) as fleet:
            first = fleet.map_grid(KamikazeRunner(crash_cells=(0,)),
                                   [{"cell": 0}])
            assert not first[0].valid
            second = fleet.map_grid(KamikazeRunner(crash_cells=()),
                                    [{"cell": 5}])
            assert second[0].valid
            assert second[0].seconds == 0.001 * 6
            assert fleet.members[0].generation >= 2

"""The serve daemon's chaos contract, end to end.

Every client request resolves to a bit-identical
:class:`RunResult` (vs the same request run fault-free inline) or a
typed :class:`ServiceError` — never a hang, a wrong answer, or an
unhandled exception — under worker crashes, wedged workers, poisoned
SK compiles, deadline pressure, and overload.

The suites build up to that: seeded retry schedules, breaker
transitions (fake clock), admission control, wire framing, harness
deadline propagation, and warm-context reuse are verified in
isolation first, then composed in the in-process service tests, the
chaos sweep, and the TCP end-to-end tests.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.apps.harness import (ProblemSpec, RunRequest, degrade_config,
                                run_request)
from repro.apps.piv import PIVConfig, PIVProblem
from repro.apps.template_matching import MatchConfig, MatchProblem
from repro.faults import (DeadlineExceeded, FaultPlan, RetryPolicy,
                          injecting, retry_call)
from repro.faults.errors import LaunchFault
from repro.gpupf import KernelCache, Pipeline
from repro.gpupf.cache import cache_key
from repro.gpusim import DEVICES, GPU, TESLA_C2070
from repro.kernelc.templates import ctrt_block
from repro.runtime.context import ExecutionContext, using_context
from repro.serve import (AdmissionController, CircuitBreaker,
                         CrashRequest, Entry, InProcClient,
                         KamikazeRunner, ServiceClient, ServiceConfig,
                         ServiceDeadlineError, ServiceError,
                         ServiceOverloadError, ServiceProtocolError,
                         ServiceRequestError, ServiceServer,
                         ServiceShutdownError, ServiceWorkerError,
                         SleepRequest, SpecializationService, recv_frame,
                         send_frame)
from repro.tuning.sweep import Sweeper, grid_configs

# ---------------------------------------------------------------------
# Workloads: tiny problems, because every service test pays process
# startup and at least one real (simulated) compile.
# ---------------------------------------------------------------------

PIV_SPEC = ProblemSpec(
    app="piv", problem=PIVProblem("serve", 40, 40, mask=8, offs=3),
    seed=3, device="c2070", memory_bytes=8 << 20)
TM_SPEC = ProblemSpec(
    app="template_matching",
    problem=MatchProblem("serve", frame_h=60, frame_w=80, tmpl_h=16,
                         tmpl_w=12, shift_h=5, shift_w=5, n_frames=1),
    seed=7, device="c2070", memory_bytes=8 << 20)


def piv_request(threads=32, **kw):
    return RunRequest(spec=PIV_SPEC,
                      config=PIVConfig(rb=2, threads=threads,
                                       functional=True), **kw)


def tm_request(threads=32, tile=(8, 8), **kw):
    return RunRequest(spec=TM_SPEC,
                      config=MatchConfig(tile_w=tile[0], tile_h=tile[1],
                                         threads=threads,
                                         functional=True), **kw)


def fast_config(workers=2, **kw):
    kw.setdefault("queue_capacity", 8)
    kw.setdefault("tick", 0.02)
    kw.setdefault("heartbeat_interval", 0.05)
    kw.setdefault("hang_timeout", 2.0)
    kw.setdefault("kill_grace", 0.2)
    return ServiceConfig(workers=workers, **kw)


@pytest.fixture(scope="module")
def baselines():
    return {"piv": run_request(piv_request()),
            "tm": run_request(tm_request())}


# ---------------------------------------------------------------------
# Satellite 1: seeded, jittered exponential backoff.
# ---------------------------------------------------------------------

class TestRetryPolicy:
    def test_identical_seeds_identical_schedules(self):
        a = RetryPolicy(max_attempts=6, base_delay=0.01, seed=42)
        b = RetryPolicy(max_attempts=6, base_delay=0.01, seed=42)
        assert a.schedule() == b.schedule()
        assert len(a.schedule()) == 5

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=6, base_delay=0.01, seed=1)
        b = RetryPolicy(max_attempts=6, base_delay=0.01, seed=2)
        assert a.schedule() != b.schedule()

    def test_schedule_is_exponential_with_cap(self):
        p = RetryPolicy(max_attempts=10, base_delay=0.01, backoff=2.0,
                        jitter=0.0, max_delay=0.05, seed=0)
        sched = p.schedule()
        assert sched[0] == pytest.approx(0.01)
        assert sched[1] == pytest.approx(0.02)
        assert max(sched) == pytest.approx(0.05)  # capped

    def test_retry_call_uses_the_published_schedule(self):
        p = RetryPolicy(max_attempts=4, base_delay=0.01, seed=9)
        slept, calls = [], []

        def fn():
            calls.append(1)
            raise LaunchFault("boom", site="launch.fail")

        with pytest.raises(LaunchFault):
            retry_call(fn, policy=p, sleep=slept.append)
        assert len(calls) == 4
        assert slept == p.schedule()

    def test_deadline_aborts_backoff_after_on_retry(self):
        p = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0,
                        max_delay=10.0, seed=0)
        hooks = []

        def fn():
            raise LaunchFault("boom", site="launch.fail")

        started = time.monotonic()
        with pytest.raises(DeadlineExceeded) as excinfo:
            retry_call(fn, policy=p, deadline=started + 0.05,
                       on_retry=lambda e, a, d: hooks.append(a))
        assert excinfo.value.site == "retry-backoff"
        # The rollback hook observed the abandoned attempt, and the
        # 10 s backoff was refused, not slept through.
        assert hooks == [1]
        assert time.monotonic() - started < 2.0


# ---------------------------------------------------------------------
# Circuit breaker state machine (fake clock: fully deterministic).
# ---------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=1.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              reset_timeout=reset, clock=clock), clock

    def test_trips_after_consecutive_failures(self):
        br, _ = self.make(threshold=3)
        for _ in range(2):
            assert br.acquire() == "sk"
            br.record(1, "sk")
        assert br.state == "closed"
        br.record(1, "sk")
        assert br.state == "open"
        assert br.trips == 1

    def test_success_resets_the_streak(self):
        br, _ = self.make(threshold=2)
        br.record(1, "sk")
        br.record(0, "sk")
        br.record(1, "sk")
        assert br.state == "closed"

    def test_open_degrades_dispatches(self):
        br, _ = self.make(threshold=1)
        br.record(1, "sk")
        assert br.state == "open"
        assert br.acquire() == "degrade"

    def test_half_open_probe_after_reset_timeout(self):
        br, clock = self.make(threshold=1, reset=5.0)
        br.record(1, "sk")
        assert br.acquire() == "degrade"
        clock.now += 5.0
        assert br.acquire() == "probe"
        # Only one probe at a time; everyone else keeps degrading.
        assert br.acquire() == "degrade"

    def test_probe_success_closes(self):
        br, clock = self.make(threshold=1, reset=1.0)
        br.record(1, "sk")
        clock.now += 1.0
        assert br.acquire() == "probe"
        br.record(0, "probe")
        assert br.state == "closed"
        assert br.acquire() == "sk"

    def test_probe_failure_reopens(self):
        br, clock = self.make(threshold=1, reset=1.0)
        br.record(1, "sk")
        clock.now += 1.0
        assert br.acquire() == "probe"
        br.record(1, "probe")
        assert br.state == "open"
        assert br.acquire() == "degrade"

    def test_aborted_probe_allows_another(self):
        br, clock = self.make(threshold=1, reset=1.0)
        br.record(1, "sk")
        clock.now += 1.0
        assert br.acquire() == "probe"
        br.abort_probe()  # probe's worker died unresolved
        assert br.acquire() == "probe"

    def test_degraded_results_are_neutral(self):
        br, _ = self.make(threshold=1)
        br.record(1, "sk")
        # Degraded traffic neither closes nor re-trips the breaker.
        for _ in range(5):
            br.record(0, "degrade")
        assert br.state == "open"
        assert br.stats()["state"] == "open"


# ---------------------------------------------------------------------
# Admission control.
# ---------------------------------------------------------------------

def make_entry(eid, deadline=None):
    from concurrent.futures import Future
    return Entry(id=eid, request=None, future=Future(),
                 deadline=deadline)


class TestAdmission:
    def test_fifo_order(self):
        adm = AdmissionController(capacity=4)
        for i in range(3):
            adm.admit(make_entry(i))
        assert [adm.next_ready().id for _ in range(3)] == [0, 1, 2]
        assert adm.next_ready() is None

    def test_overload_is_shed_typed(self):
        shed = []
        adm = AdmissionController(capacity=2, on_shed=shed.append)
        adm.admit(make_entry(1))
        adm.admit(make_entry(2))
        with pytest.raises(ServiceOverloadError) as excinfo:
            adm.admit(make_entry(3))
        assert excinfo.value.depth == 2
        assert excinfo.value.capacity == 2
        assert excinfo.value.code == "overload"
        assert len(shed) == 1
        assert adm.stats()["shed"] == 1

    def test_expired_deadline_rejected_at_the_door(self):
        adm = AdmissionController(capacity=2)
        with pytest.raises(ServiceDeadlineError) as excinfo:
            adm.admit(make_entry(1, deadline=time.monotonic() - 1.0))
        assert excinfo.value.phase == "queued"
        assert adm.depth == 0

    def test_expired_in_queue_resolved_on_pop(self):
        adm = AdmissionController(capacity=4)
        dead = make_entry(1, deadline=time.monotonic() + 0.01)
        live = make_entry(2)
        adm.admit(dead)
        adm.admit(live)
        time.sleep(0.03)
        assert adm.next_ready() is live
        with pytest.raises(ServiceDeadlineError):
            dead.future.result(timeout=0)

    def test_sweep_expired_resolves_without_a_pop(self):
        adm = AdmissionController(capacity=4)
        dead = make_entry(1, deadline=time.monotonic() + 0.01)
        adm.admit(dead)
        adm.admit(make_entry(2))
        time.sleep(0.03)
        assert adm.sweep_expired() == 1
        assert adm.depth == 1
        with pytest.raises(ServiceDeadlineError):
            dead.future.result(timeout=0)

    def test_requeue_front_preserves_priority(self):
        adm = AdmissionController(capacity=4)
        adm.admit(make_entry(1))
        adm.admit(make_entry(2))
        first = adm.next_ready()
        adm.requeue_front(first)  # crashed dispatch goes back first
        assert adm.next_ready() is first

    def test_closed_queue_rejects_typed(self):
        adm = AdmissionController(capacity=4)
        adm.close()
        with pytest.raises(ServiceShutdownError):
            adm.admit(make_entry(1))

    def test_entry_completes_exactly_once(self):
        entry = make_entry(1)
        assert entry.complete(result="first")
        assert not entry.complete(error=RuntimeError("late"))
        assert entry.future.result(timeout=0) == "first"
        assert entry.done


# ---------------------------------------------------------------------
# Wire framing.
# ---------------------------------------------------------------------

def sock_pair():
    a, b = socket.socketpair()
    return a, b


class TestWire:
    def test_roundtrip(self):
        a, b = sock_pair()
        try:
            payload = {"x": np.arange(4), "req": piv_request()}
            send_frame(a, payload)
            got = recv_frame(b)
            np.testing.assert_array_equal(got["x"], payload["x"])
            assert got["req"].spec.app == "piv"
        finally:
            a.close(), b.close()

    def test_clean_close_is_eof(self):
        a, b = sock_pair()
        a.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(b)
        finally:
            b.close()

    def test_torn_frame_is_protocol_error(self):
        a, b = sock_pair()
        try:
            a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10half")
            a.close()
            with pytest.raises(ServiceProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_before_read(self):
        a, b = sock_pair()
        try:
            send_frame(a, "ok")
            a.sendall(b"\xff" * 8)  # ludicrous length prefix
            assert recv_frame(b) == "ok"
            with pytest.raises(ServiceProtocolError):
                recv_frame(b)
        finally:
            a.close(), b.close()

    def test_garbage_payload_is_protocol_error(self):
        a, b = sock_pair()
        try:
            a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x04ABCD")
            with pytest.raises(ServiceProtocolError):
                recv_frame(b)
        finally:
            a.close(), b.close()


# ---------------------------------------------------------------------
# Satellite 4: deadline propagation through the harness and the
# compile/launch retry paths.
# ---------------------------------------------------------------------

SCALE_SRC = ctrt_block({"FACTOR": "factor"}) + """
__global__ void scale(const float* in, float* out, int n, int factor) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = in[i] * (float)FACTOR_VAL;
}
"""


def build_scale_pipeline(retry=None):
    gpu = GPU(TESLA_C2070, memory_bytes=1 << 20)
    pipe = Pipeline(gpu, "scale", cache=KernelCache(), retry=retry)
    n = pipe.int_param("n", 256)
    factor = pipe.int_param("factor", 3)
    extent = pipe.extent_param("buf", (256,), 4)
    mod = pipe.module("mod", SCALE_SRC,
                      defines={"CT_FACTOR": 1, "FACTOR": factor})
    k = pipe.kernel("scale", mod)
    h_in = pipe.host_memory("h_in", extent)
    h_out = pipe.host_memory("h_out", extent)
    d_in = pipe.global_memory("d_in", extent)
    d_out = pipe.global_memory("d_out", extent)
    pipe.copy("upload", h_in, d_in)
    pipe.kernel_exec("run", k, (2, 1, 1), (128, 1, 1),
                     [d_in, d_out, n, factor])
    pipe.copy("download", d_out, h_out)
    return pipe


def run_scale(pipe):
    pipe.refresh()
    pipe.resources["h_in"].array[:] = \
        np.arange(256, dtype=np.float32) / 7.0
    pipe.run(1)
    return pipe.resources["h_out"].array.copy()


class TestDeadlines:
    def test_expired_deadline_refused_before_launch(self):
        request = piv_request(deadline=time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            run_request(request)
        assert excinfo.value.site == "before-launch"

    def test_no_deadline_is_unbounded(self, baselines):
        result = run_request(piv_request(deadline=None))
        assert baselines["piv"].same_output(result)

    def test_live_deadline_does_not_perturb_results(self, baselines):
        result = run_request(
            piv_request(deadline=time.monotonic() + 60.0))
        assert baselines["piv"].same_output(result)

    def test_mid_retry_expiry_aborts_cleanly(self):
        # A launch fault under a 10 s backoff policy: the deadline
        # refuses the backoff (DeadlineExceeded, fast), and because
        # on_retry ran first, the gmem rollback left device state
        # intact — proven by the clean re-run matching baseline.
        baseline = run_scale(build_scale_pipeline())
        retry = RetryPolicy(max_attempts=5, base_delay=10.0,
                            jitter=0.0, max_delay=10.0, seed=0)
        pipe = build_scale_pipeline(retry=retry)
        ctx = pipe.ctx
        plan = FaultPlan(seed=1, counts={"launch.fail": 3})
        started = time.monotonic()
        ctx.deadline = started + 0.25
        try:
            with injecting(plan):
                with pytest.raises(DeadlineExceeded) as excinfo:
                    run_scale(pipe)
        finally:
            ctx.deadline = None
        assert excinfo.value.site == "retry-backoff"
        assert time.monotonic() - started < 5.0
        out = run_scale(pipe)
        np.testing.assert_array_equal(out, baseline)

    def test_deadline_scope_restores_previous(self):
        ctx = ExecutionContext(device=DEVICES["c2070"], name="dl")
        assert ctx.deadline is None
        with ctx.deadline_scope(123.0):
            assert ctx.deadline == 123.0
            with ctx.deadline_scope(None):
                assert ctx.deadline is None
            assert ctx.deadline == 123.0
        assert ctx.deadline is None


# ---------------------------------------------------------------------
# Warm-context reuse (§4.3 amortization) and forced degradation.
# ---------------------------------------------------------------------

class TestWarmContext:
    def test_warm_rerun_bit_identical_with_cache_hits(self, baselines):
        ctx = ExecutionContext(device=DEVICES["c2070"], name="warm")
        cold = run_request(piv_request(), context=ctx)
        hits_before = ctx.kernel_cache.stats()["hits"]
        warm = run_request(piv_request(), context=ctx)
        assert baselines["piv"].same_output(cold)
        assert baselines["piv"].same_output(warm)
        # The second run hit the kernel cache and rebuilt no plans.
        assert ctx.kernel_cache.stats()["hits"] > hits_before
        assert warm.counters["plan_misses"] == 0
        assert warm.counters["plan_hits"] > 0
        # Delta accounting: the cold run reports its own misses only.
        assert cold.counters["plan_misses"] > 0

    def test_degrade_flag_forces_re_bit_identically(self, baselines):
        result = run_request(piv_request(degrade=True))
        assert result.degraded
        assert baselines["piv"].same_output(result)

    def test_degrade_config_strips_specialization_only(self):
        config = PIVConfig(rb=2, threads=32, functional=True)
        stripped = degrade_config(config)
        assert stripped.specialize is False
        assert stripped.rb == config.rb
        assert degrade_config(stripped) is stripped


# ---------------------------------------------------------------------
# Satellite 3: the kernel-cache single-flight latch cannot wedge.
# ---------------------------------------------------------------------

class TestLatchTimeout:
    SRC = "__global__ void noop(float* p) { p[0] = 1.0f; }"

    def _stale_latch(self, cache):
        key_src = self.SRC
        key = cache_key(key_src, None, "sm_20", 3)
        latch = threading.Event()  # a "leader" that will never finish
        cache._in_flight[key] = latch
        return latch

    def test_waiter_takes_over_after_timeout(self):
        cache = KernelCache(latch_timeout=0.05)
        self._stale_latch(cache)
        started = time.monotonic()
        module = cache.compile(self.SRC)
        assert module is not None
        assert 0.04 < time.monotonic() - started < 5.0
        assert cache.stats()["latch_timeouts"] == 1
        # The takeover compiled for real and cached the result.
        assert cache.stats()["misses"] == 1
        assert cache.compile(self.SRC) is module
        assert cache.stats()["hits"] == 1

    def test_timeout_bumps_context_metric(self):
        cache = KernelCache(latch_timeout=0.05)
        self._stale_latch(cache)
        ctx = ExecutionContext(device=DEVICES["c2070"], name="latch")
        with using_context(ctx):
            cache.compile(self.SRC)
        counters = ctx.metrics.snapshot()["counters"]
        assert counters.get("cache.latch_timeout") == 1

    def test_stale_waiters_all_wake(self):
        cache = KernelCache(latch_timeout=0.05)
        stale = self._stale_latch(cache)
        results = []
        threads = [threading.Thread(
            target=lambda: results.append(cache.compile(self.SRC)))
            for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert len(results) == 3
        assert all(r is results[0] for r in results)
        assert stale.is_set()  # takeover woke everyone stuck on it
        assert cache.stats()["latch_timeouts"] >= 1

    def test_clear_resets_latch_counter(self):
        cache = KernelCache(latch_timeout=0.05)
        self._stale_latch(cache)
        cache.compile(self.SRC)
        cache.clear()
        assert cache.stats()["latch_timeouts"] == 0


# ---------------------------------------------------------------------
# Satellite 2: process-pool sweeps survive worker death.
# ---------------------------------------------------------------------

class TestSweepWorkerCrash:
    def test_killed_worker_surfaces_as_typed_record(self):
        runner = KamikazeRunner(crash_cells=(3,))
        sweeper = Sweeper(runner, jobs=2, pool="process")
        records = sweeper.sweep(grid_configs(cell=[0, 1, 2, 3]))
        # Grid order survives the carnage.
        assert [r.index for r in records] == [0, 1, 2, 3]
        # The victim is a typed WorkerCrashError record; every other
        # record either finished normally or was collateral of the
        # same pool breakage — never a hang or a bare exception.
        assert not records[3].valid
        assert "WorkerCrashError" in records[3].error
        for r in records:
            assert r.valid or "WorkerCrashError" in r.error
        taxonomy = sweeper.error_taxonomy()
        assert taxonomy.get("WorkerCrashError", 0) >= 1

    def test_survivors_keep_their_results(self):
        # jobs=2 on four cells with the *last* cell lethal: cell 0 is
        # dispatched first and finishes before the pool can break.
        runner = KamikazeRunner(crash_cells=(3,))
        sweeper = Sweeper(runner, jobs=2, pool="process")
        records = sweeper.sweep(grid_configs(cell=[0, 1, 2, 3]))
        survivors = [r for r in records if r.valid]
        assert survivors, "no cell survived a single worker death"
        for r in survivors:
            assert r.seconds == pytest.approx(
                0.001 * (r.config["cell"] + 1))


# ---------------------------------------------------------------------
# The in-process service: supervision, redispatch, deadlines,
# shedding, drain, health.
# ---------------------------------------------------------------------

class TestServiceInProc:
    def test_served_result_bit_identical_to_inline(self, baselines):
        with SpecializationService(fast_config()) as svc:
            client = InProcClient(svc)
            result = client.run(piv_request())
            assert baselines["piv"].same_output(result)
            assert result.worker.startswith("w")
            assert result.attempts == 1

    def test_warm_pool_reuses_contexts(self):
        with SpecializationService(fast_config(workers=1)) as svc:
            client = InProcClient(svc)
            cold = client.run(tm_request())
            warm = client.run(tm_request())
            assert cold.same_output(warm)
            assert warm.counters["plan_misses"] == 0
            assert warm.counters["plan_hits"] > 0

    def test_crash_redispatch_within_budget_succeeds(self):
        with SpecializationService(
                fast_config(max_redispatch=2)) as svc:
            client = InProcClient(svc)
            result = client.run(CrashRequest(crashes=1))
            assert result.app == "chaos.crash"
            assert result is not None

    def test_crash_budget_exhausted_is_typed(self):
        with SpecializationService(
                fast_config(max_redispatch=2)) as svc:
            client = InProcClient(svc)
            with pytest.raises(ServiceWorkerError) as excinfo:
                client.run(CrashRequest(crashes=0))
            assert excinfo.value.attempts == 3
            assert excinfo.value.code == "worker"

    def test_service_survives_crashes_and_keeps_serving(self, baselines):
        with SpecializationService(fast_config()) as svc:
            client = InProcClient(svc)
            with pytest.raises(ServiceWorkerError):
                client.run(CrashRequest(crashes=0))
            # Fresh workers respawn and real work still completes.
            result = client.run(piv_request(),
                                deadline=time.monotonic() + 60.0)
            assert baselines["piv"].same_output(result)
            health = svc.health()
            assert health["metrics"]["counters"]["serve.worker.crash"] \
                >= 3

    def test_expired_deadline_rejected_at_submit(self):
        with SpecializationService(fast_config(workers=1)) as svc:
            with pytest.raises(ServiceDeadlineError) as excinfo:
                svc.submit(piv_request(),
                           deadline=time.monotonic() - 1.0)
            assert excinfo.value.phase == "queued"

    def test_queued_deadline_expiry_resolves_typed(self):
        with SpecializationService(fast_config(workers=1)) as svc:
            blocker = svc.submit(SleepRequest(0.6))
            time.sleep(0.1)  # let it occupy the only worker
            fut = svc.submit(piv_request(),
                             deadline=time.monotonic() + 0.15)
            with pytest.raises(ServiceDeadlineError) as excinfo:
                fut.result(timeout=5.0)
            assert excinfo.value.phase == "queued"
            assert blocker.result(timeout=5.0).app == "chaos.sleep"

    def test_deadline_backstop_kills_wedged_worker(self):
        cfg = fast_config(workers=1, kill_grace=0.2, max_redispatch=0)
        with SpecializationService(cfg) as svc:
            started = time.monotonic()
            fut = svc.submit(SleepRequest(30.0),
                             deadline=started + 0.3)
            with pytest.raises(ServiceDeadlineError) as excinfo:
                fut.result(timeout=10.0)
            assert excinfo.value.phase == "running"
            assert time.monotonic() - started < 8.0
            # The killed slot respawns and the service keeps serving.
            result = svc.run(SleepRequest(0.01), timeout=10.0)
            assert result.app == "chaos.sleep"

    def test_overload_sheds_typed(self):
        cfg = fast_config(workers=1, queue_capacity=2)
        with SpecializationService(cfg) as svc:
            running = svc.submit(SleepRequest(0.8))
            time.sleep(0.15)  # ensure it is on the worker, not queued
            queued = [svc.submit(SleepRequest(0.01)) for _ in range(2)]
            with pytest.raises(ServiceOverloadError) as excinfo:
                svc.submit(SleepRequest(0.01))
            assert excinfo.value.capacity == 2
            assert svc.metrics.counter("serve.shed") == 1
            for fut in [running] + queued:
                assert fut.result(timeout=10.0).app == "chaos.sleep"

    def test_drain_shutdown_finishes_queued_work(self):
        svc = SpecializationService(fast_config(workers=1)).start()
        futures = [svc.submit(SleepRequest(0.05)) for _ in range(4)]
        svc.shutdown(drain=True)
        for fut in futures:
            assert fut.result(timeout=0).app == "chaos.sleep"
        assert svc.health()["status"] == "stopped"

    def test_abort_shutdown_resolves_pending_typed(self):
        svc = SpecializationService(fast_config(workers=1)).start()
        futures = [svc.submit(SleepRequest(0.5)) for _ in range(3)]
        time.sleep(0.1)
        svc.shutdown(drain=False)
        outcomes = []
        for fut in futures:
            try:
                outcomes.append(fut.result(timeout=5.0))
            except ServiceShutdownError:
                outcomes.append("shutdown")
        # Nothing hangs: every future resolved one way or the other,
        # and the aborted tail got the typed shutdown answer.
        assert len(outcomes) == 3
        assert "shutdown" in outcomes

    def test_submit_after_shutdown_is_typed(self):
        svc = SpecializationService(fast_config(workers=1)).start()
        svc.shutdown(drain=True)
        with pytest.raises(ServiceShutdownError):
            svc.submit(SleepRequest(0.01))

    def test_hung_worker_detected_by_heartbeat(self):
        cfg = fast_config(workers=1, hang_timeout=0.4)
        with SpecializationService(cfg) as svc:
            client = InProcClient(svc)
            client.run(SleepRequest(0.01))  # wait for a live worker
            row = svc.health()["workers"][0]
            assert row["alive"]
            os.kill(row["pid"], signal.SIGSTOP)  # wedge it silently
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                rows = svc.health()["workers"]
                if rows[0]["id"] not in (None, row["id"]) \
                        and rows[0]["alive"]:
                    break
                time.sleep(0.05)
            rows = svc.health()["workers"]
            assert rows[0]["id"] != row["id"], \
                "stale-heartbeat worker was never replaced"
            assert svc.metrics.counter("serve.hang_kill") >= 1
            # And the replacement actually serves.
            assert client.run(SleepRequest(0.01)).app == "chaos.sleep"

    def test_health_report_shape(self):
        with SpecializationService(fast_config()) as svc:
            svc.run(SleepRequest(0.01), timeout=10.0)
            health = svc.health()
            assert health["status"] == "ok"
            assert {"status", "uptime_s", "workers", "queue",
                    "breaker", "metrics", "events"} <= set(health)
            assert len(health["workers"]) == 2
            for row in health["workers"]:
                assert {"slot", "id", "pid", "alive", "busy",
                        "beat_age_s", "restarts",
                        "crash_streak"} <= set(row)
            assert health["queue"]["capacity"] == 8
            assert health["breaker"]["state"] == "closed"
            counters = health["metrics"]["counters"]
            assert counters["serve.ok"] >= 1

    def test_restart_backoff_schedule_is_deterministic(self):
        cfg = fast_config()
        assert cfg.restart_backoff.schedule() == \
            fast_config().restart_backoff.schedule()


# ---------------------------------------------------------------------
# Breaker end to end: poisoned SK compiles trip it; the service
# pre-degrades (bit-identically) and recovers via a half-open probe.
# ---------------------------------------------------------------------

SK_POISON = FaultPlan(seed=5, counts={"nvcc.compile": 1},
                      match={"nvcc.compile": "CT_"})


class TestBreakerEndToEnd:
    def test_trip_degrade_and_recover(self, baselines):
        cfg = fast_config(workers=1, breaker_threshold=2,
                          breaker_reset=0.4)
        tiles = [(8, 8), (16, 8), (8, 16), (16, 16)]
        with SpecializationService(cfg) as svc:
            client = InProcClient(svc)
            # Two distinct configs, each with an absorbed SK compile
            # fault: consecutive compile-path failures trip the
            # breaker even though both requests completed.
            for tile in tiles[:2]:
                result = client.run(
                    tm_request(tile=tile, fault_plan=SK_POISON))
                assert result.faults.get("nvcc.compile") == 1
                assert not result.degraded
            assert svc.breaker.stats()["trips"] == 1
            # Open: a fresh config is dispatched pre-degraded — no SK
            # compile, no fault fires, and the answer is still exact.
            degraded = client.run(
                tm_request(tile=tiles[2], fault_plan=SK_POISON))
            assert degraded.degraded
            assert not degraded.faults
            # Half-open after the reset window: the next request is
            # the probe; clean, so the breaker closes again.
            time.sleep(0.5)
            probe = client.run(tm_request(tile=tiles[3]))
            assert not probe.degraded
            after = client.run(tm_request(tile=(8, 8), threads=64))
            assert not after.degraded
            assert svc.breaker.state == "closed"
            assert svc.breaker.probes >= 1

    def test_degraded_dispatch_is_bit_identical(self, baselines):
        cfg = fast_config(workers=1, breaker_threshold=1,
                          breaker_reset=30.0)
        with SpecializationService(cfg) as svc:
            client = InProcClient(svc)
            client.run(tm_request(fault_plan=SK_POISON))
            assert svc.breaker.state == "open"
            result = client.run(tm_request(tile=(16, 16)))
            assert result.degraded
            inline = run_request(tm_request(tile=(16, 16)))
            assert inline.same_output(result)

    def test_hard_compile_failure_counts_via_error_path(self):
        # PIV compiles outside the pipeline retry wrapper: the same
        # poison is a typed hard failure, and the breaker still sees
        # the compile site from the error.
        cfg = fast_config(workers=1, breaker_threshold=1,
                          breaker_reset=30.0)
        with SpecializationService(cfg) as svc:
            client = InProcClient(svc)
            with pytest.raises(ServiceRequestError) as excinfo:
                client.run(piv_request(
                    fault_plan=FaultPlan(seed=5,
                                         counts={"nvcc.compile": 1})))
            assert excinfo.value.site == "nvcc.compile"
            assert excinfo.value.cause is not None
            assert svc.breaker.state == "open"


# ---------------------------------------------------------------------
# The chaos contract, served: seeded fault plans + worker kills.
# ---------------------------------------------------------------------

CHAOS_RATES = {"nvcc.compile": 0.25, "nvcc.timeout": 0.1,
               "launch.fail": 0.15, "launch.watchdog": 0.15,
               "memory.bitflip": 0.1}


class TestServedChaosContract:
    def test_every_request_resolves_exact_or_typed(self, baselines):
        requests = [tm_request(fault_plan=FaultPlan(
            seed=seed, rates=CHAOS_RATES)) for seed in range(6)]
        with SpecializationService(fast_config(workers=2)) as svc:
            futures = [svc.submit(r) for r in requests]
            for fut in futures:
                try:
                    result = fut.result(timeout=60.0)
                except ServiceError:
                    continue  # typed refusal: legitimate outcome
                assert baselines["tm"].same_output(result)

    def test_served_chaos_matches_inline_chaos(self, baselines):
        # Same seeded plan, inline vs served: identical outcome class
        # and identical fault summaries (the injector rebuilt in the
        # worker from the shipped plan, not inherited).
        plan = FaultPlan(seed=4, counts={"nvcc.compile": 1})
        inline = run_request(tm_request(fault_plan=plan))
        with SpecializationService(fast_config(workers=1)) as svc:
            served = InProcClient(svc).run(tm_request(fault_plan=plan))
        assert inline.same_output(served)
        assert inline.faults == served.faults

    def test_interleaved_crashes_do_not_corrupt_results(self, baselines):
        with SpecializationService(
                fast_config(workers=2, max_redispatch=2)) as svc:
            futures = []
            for i in range(4):
                futures.append(svc.submit(piv_request()))
                futures.append(svc.submit(CrashRequest(crashes=1)))
            for i, fut in enumerate(futures):
                result = fut.result(timeout=120.0)
                if i % 2 == 0:
                    assert baselines["piv"].same_output(result)
                else:
                    assert result.app == "chaos.crash"


# ---------------------------------------------------------------------
# TCP end to end.
# ---------------------------------------------------------------------

@pytest.fixture()
def tcp_service():
    svc = SpecializationService(fast_config(workers=1)).start()
    server = ServiceServer(svc).start()
    try:
        yield server
    finally:
        server.stop()
        svc.shutdown(drain=False)


class TestServiceTCP:
    def test_ping_and_run(self, tcp_service, baselines):
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port) as client:
            assert client.ping() == "pong"
            result = client.run(piv_request())
            assert baselines["piv"].same_output(result)
            assert result.worker.startswith("w")

    def test_health_over_the_wire(self, tcp_service):
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert len(health["workers"]) == 1

    def test_typed_errors_reraise_client_side(self, tcp_service):
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ServiceDeadlineError) as excinfo:
                client.run(piv_request(),
                           deadline=time.monotonic() - 1.0)
            assert excinfo.value.phase == "queued"
            # The connection stays usable after a typed error.
            assert client.ping() == "pong"

    def test_unknown_op_is_protocol_error(self, tcp_service):
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ServiceProtocolError):
                client._call(("frobnicate",))

    def test_run_many_in_order(self, tcp_service):
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port) as client:
            results = client.run_many([SleepRequest(0.01),
                                       SleepRequest(0.02)])
            assert [r.seconds for r in results] == [0.01, 0.02]

    def test_metrics_op_speaks_prometheus(self, tcp_service):
        from repro.obs.prom import validate_prom
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port) as client:
            client.run(piv_request(), client="gus")
            text = client.metrics_text()
        assert validate_prom(text) == []
        assert "# TYPE repro_serve_ok counter" in text
        assert "# TYPE repro_client_gus_latency_s histogram" in text

    def test_worker_spans_graft_across_the_wire(self, tcp_service):
        # Cross-process span propagation over TCP: the request carries
        # a TraceContext to the worker process, the worker ships its
        # span tree back, and the daemon-side tracer shows it grafted
        # under the request span.
        service = tcp_service.service
        tracer = service.enable_tracing("serve-tcp")
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port,
                           client="heidi") as client:
            client.run(piv_request())
        request_spans = [s for s in tracer.spans
                         if s.parent is None
                         and s.name.startswith("request:")]
        assert len(request_spans) == 1
        wrapper = request_spans[0]
        assert wrapper.attrs["client"] == "heidi"
        assert wrapper.attrs["worker"].startswith("w")
        phases = {s.name for s in tracer.spans
                  if s.parent == wrapper.sid}
        assert "queue" in phases
        worker_span = next(s for s in tracer.spans
                           if s.parent == wrapper.sid
                           and s.name.startswith("worker:"))
        shipped = [s for s in tracer.spans
                   if s.parent == worker_span.sid]
        assert shipped  # the worker process's span tree arrived
        from repro.obs.export import chrome_trace, validate_chrome
        assert validate_chrome(chrome_trace(tracer.to_dict())) == []


# ---------------------------------------------------------------------
# Per-client attribution and device-affinity dispatch.
# ---------------------------------------------------------------------

def _counts(row):
    """Outcome counters only — client rows also carry p50_s/p95_s/p99_s
    latency quantiles (and slo_breach when an SLO is set)."""
    return {k: v for k, v in row.items()
            if not k.endswith("_s") and k != "slo_breach"}


class TestClientAttribution:
    def test_health_reports_per_client_counts(self):
        with SpecializationService(fast_config(workers=1)) as svc:
            svc.run(piv_request(), client="alice")
            svc.run(piv_request(), client="alice")
            svc.run(tm_request(), client="bob")
            svc.run(piv_request())  # untagged -> "anon"
            health = svc.health()
        alice = health["clients"]["alice"]
        assert _counts(alice) == {"submitted": 2, "ok": 2}
        # completed requests come with latency quantile estimates
        assert alice["p50_s"] > 0.0
        assert alice["p50_s"] <= alice["p95_s"] <= alice["p99_s"]
        assert _counts(health["clients"]["bob"]) \
            == {"submitted": 1, "ok": 1}
        assert _counts(health["clients"]["anon"]) \
            == {"submitted": 1, "ok": 1}

    def test_rejected_submission_attributed(self):
        with SpecializationService(fast_config(workers=1)) as svc:
            with pytest.raises(ServiceDeadlineError):
                svc.submit(piv_request(),
                           deadline=time.monotonic() - 1.0,
                           client="carol")
            health = svc.health()
        assert health["clients"]["carol"] == {"rejected": 1}

    def test_error_outcome_attributed(self):
        cfg = fast_config(workers=1, max_redispatch=0)
        with SpecializationService(cfg) as svc:
            with pytest.raises(ServiceWorkerError):
                svc.run(CrashRequest(crashes=0), client="dave")
            health = svc.health()
        row = health["clients"]["dave"]
        assert row["submitted"] == 1 and row["err"] == 1

    def test_tcp_client_name_rides_the_wire(self, tcp_service):
        host, port = tcp_service.address
        with ServiceClient(host=host, port=port,
                           client="erin") as named:
            named.run(piv_request())
            named.run(piv_request(), client="frank")  # per-call override
        with ServiceClient(host=host, port=port) as anon:
            anon.run(piv_request())
            health = anon.health()
        assert _counts(health["clients"]["erin"]) \
            == {"submitted": 1, "ok": 1}
        assert _counts(health["clients"]["frank"]) \
            == {"submitted": 1, "ok": 1}
        # unnamed TCP callers attribute to their peer address
        addr_rows = [name for name in health["clients"]
                     if name.startswith("127.0.0.1:")]
        assert len(addr_rows) == 1
        assert _counts(health["clients"][addr_rows[0]]) \
            == {"submitted": 1, "ok": 1}


class TestDeviceAffinity:
    def test_repeat_device_lands_on_warm_worker(self):
        spec = ProblemSpec(app="piv",
                           problem=PIVProblem("aff", 40, 40, mask=8,
                                              offs=3),
                           seed=3, device="k20", memory_bytes=8 << 20)
        req = RunRequest(spec=spec,
                         config=PIVConfig(rb=2, threads=32,
                                          functional=True))
        with SpecializationService(fast_config(workers=2)) as svc:
            first = svc.run(req)
            second = svc.run(req)
            health = svc.health()
        # the second dispatch preferred the worker already warm for
        # k20 over plain first-idle selection
        assert second.worker == first.worker
        assert health["metrics"]["counters"]["serve.affinity_hit"] >= 1

"""Timing model and launcher API tests."""

import numpy as np
import pytest

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.gpusim.executor import BlockStats, SimError, WarpStats
from repro.gpusim.memory import MemoryError_
from repro.gpusim.occupancy import Occupancy
from repro.gpusim.timing import kernel_timing
from repro.kernelc import nvcc

COPY_SRC = """
__global__ void copy(const float* in, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = in[i];
}
"""


def make_stats(issue=1000.0, mem_bytes=0, stalls=0, warps=4):
    ws = [WarpStats(issue_cycles=issue / warps,
                    mem_bytes=mem_bytes // warps,
                    global_stalls=stalls) for _ in range(warps)]
    return BlockStats(warps=ws)


def occ(blocks=8, warps=4):
    return Occupancy(blocks_per_sm=blocks, warps_per_block=warps,
                     limited_by="warps")


class TestTimingModel:
    def test_issue_bound_scaling(self):
        t1 = kernel_timing(TESLA_C2070, occ(), 1400, [make_stats(1000)])
        t2 = kernel_timing(TESLA_C2070, occ(), 1400, [make_stats(2000)])
        assert t2.cycles == pytest.approx(2 * t1.cycles)

    def test_bandwidth_bound_detected(self):
        stats = make_stats(issue=10.0, mem_bytes=10_000_000)
        t = kernel_timing(TESLA_C2070, occ(), 1400, [stats])
        assert t.bound == "bandwidth"

    def test_latency_bound_at_low_occupancy(self):
        stats = make_stats(issue=100.0, stalls=50)
        t = kernel_timing(TESLA_C2070, occ(blocks=1, warps=1), 14,
                          [stats])
        assert t.bound == "latency"
        assert t.latency_bound >= 50 * TESLA_C2070.mem_latency / 4

    def test_rounds_grow_with_grid(self):
        small = kernel_timing(TESLA_C2070, occ(), 14, [make_stats()])
        large = kernel_timing(TESLA_C2070, occ(), 14 * 8 * 3,
                              [make_stats()])
        assert large.rounds == 3 * small.rounds

    def test_small_grid_does_not_serialize_one_sm(self):
        """A 6-block grid on 14 SMs must not pay 6 blocks' issue."""
        t = kernel_timing(TESLA_C2070, occ(blocks=8), 6,
                          [make_stats(1000)])
        assert t.issue_bound == pytest.approx(1000.0)

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            kernel_timing(TESLA_C2070, occ(), 10, [])

    def test_seconds_include_launch_overhead(self):
        t = kernel_timing(TESLA_C2070, occ(), 1, [make_stats(1.0)])
        assert t.seconds >= TESLA_C2070.launch_overhead_us * 1e-6


class TestLauncherAPI:
    def setup_method(self):
        self.gpu = GPU(TESLA_C2070)
        self.module = nvcc(COPY_SRC)
        self.kernel = self.module.kernel("copy")

    def test_wrong_arg_count_rejected(self):
        with pytest.raises(SimError, match="takes 3 arguments"):
            self.gpu.launch(self.kernel, 1, 32, [0, 0])

    def test_empty_grid_rejected(self):
        with pytest.raises(SimError):
            self.gpu.launch(self.kernel, 0, 32, [0, 0, 0])

    def test_sampled_launch_spreads_blocks(self):
        x = np.arange(1024, dtype=np.float32)
        d_in = self.gpu.alloc_array(x)
        d_out = self.gpu.zeros(1024, np.float32)
        result = self.gpu.launch(self.kernel, 32, 32,
                                 [d_in, d_out, 1024],
                                 functional=False, sample_blocks=4)
        assert result.blocks_executed == 4
        # Outputs incomplete by design in sampled mode.

    def test_functional_launch_executes_all(self):
        x = np.arange(256, dtype=np.float32)
        d_in = self.gpu.alloc_array(x)
        d_out = self.gpu.zeros(256, np.float32)
        result = self.gpu.launch(self.kernel, 8, 32, [d_in, d_out, 256])
        assert result.blocks_executed == 8
        np.testing.assert_array_equal(
            self.gpu.memcpy_dtoh(d_out, np.float32, 256), x)

    def test_launch_result_metadata(self):
        d_in = self.gpu.zeros(64, np.float32)
        d_out = self.gpu.zeros(64, np.float32)
        result = self.gpu.launch(self.kernel, 2, 32, [d_in, d_out, 64])
        assert result.grid == (2, 1, 1)
        assert result.block == (32, 1, 1)
        assert result.instructions > 0
        assert result.seconds > 0

    def test_device_memory_roundtrip(self):
        data = np.random.default_rng(0).random(100).astype(np.float32)
        addr = self.gpu.alloc_array(data)
        np.testing.assert_array_equal(
            self.gpu.memcpy_dtoh(addr, np.float32, 100), data)

    def test_oom_reported(self):
        small = GPU(TESLA_C2070, memory_bytes=1024)
        with pytest.raises(MemoryError_, match="out of memory"):
            small.malloc(10_000)

    def test_reset_reclaims_memory(self):
        gpu = GPU(TESLA_C2070, memory_bytes=4096)
        gpu.malloc(2048)
        gpu.reset()
        gpu.malloc(2048)  # fits again

    def test_c1060_rejects_1024_threads(self):
        from repro.gpusim.occupancy import OccupancyError
        gpu = GPU(TESLA_C1060)
        with pytest.raises(OccupancyError):
            gpu.launch(self.kernel, 1, 1024, [0, 0, 0])

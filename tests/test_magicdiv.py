"""Magic-number division tests (Hacker's Delight §10 sequences)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernelc import nvcc
from repro.kernelc.passes.magicdiv import magic_signed, magic_unsigned
from tests.helpers import run_kernel


class TestMagicConstants:
    @settings(max_examples=200)
    @given(d=st.integers(2, 2**31 - 1), x=st.integers(0, 2**32 - 1))
    def test_unsigned_magic_exact(self, d, x):
        m, s, add = magic_unsigned(d)
        hi = (x * m) >> 32
        if not add:
            q = hi >> s
        else:
            q = (((x - hi) >> 1) + hi) >> (s - 1)
        assert q == x // d

    @settings(max_examples=200)
    @given(d=st.integers(2, 2**30), x=st.integers(-(2**31), 2**31 - 1))
    def test_signed_magic_exact(self, d, x):
        m, s = magic_signed(d)
        sm = m - (1 << 32) if m >= (1 << 31) else m
        hi = (x * sm) >> 32
        if sm < 0:
            hi += x
        q = (hi >> s) + ((x >> 31) & 1 if x < 0 else 0)
        expected = abs(x) // d
        if x < 0:
            expected = -expected
        assert q == expected

    def test_known_divisor_seven(self):
        # The classic example: unsigned divide by 7.
        m, s, add = magic_unsigned(7)
        for x in (0, 6, 7, 13, 700, 2**32 - 1):
            hi = (x * m) >> 32
            q = (((x - hi) >> 1) + hi) >> (s - 1) if add else hi >> s
            assert q == x // 7


class TestEndToEnd:
    def test_div_nine_emits_mulhi(self):
        src = """
        __global__ void k(const int* x, int* q) {
            q[threadIdx.x] = x[threadIdx.x] / 9;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "mulhi" in ptx and "div" not in ptx

    def test_runtime_divisor_keeps_divide(self):
        src = """
        __global__ void k(const int* x, int* q, int d) {
            q[threadIdx.x] = x[threadIdx.x] / d;
        }
        """
        ptx = nvcc(src).kernel("k").to_ptx()
        assert "div" in ptx and "mulhi" not in ptx

    @settings(max_examples=15, deadline=None)
    @given(d=st.integers(3, 200).filter(lambda v: v & (v - 1)),
           seed=st.integers(0, 100))
    def test_signed_divrem_matches_c(self, d, seed):
        src = """
        __global__ void k(const int* x, int* q, int* r) {
            int i = threadIdx.x;
            q[i] = x[i] / %d;
            r[i] = x[i] %% %d;
        }
        """ % (d, d)
        rng = np.random.default_rng(seed)
        x = rng.integers(-(2**31), 2**31, 32, dtype=np.int32)
        q = np.zeros(32, np.int32)
        r = np.zeros(32, np.int32)
        (_, q_, r_), _ = run_kernel(src, 1, 32, x, q, r)
        x64 = x.astype(np.int64)
        expected_q = np.where(x64 >= 0, x64 // d, -((-x64) // d))
        np.testing.assert_array_equal(q_, expected_q.astype(np.int32))
        np.testing.assert_array_equal(
            r_, (x64 - expected_q * d).astype(np.int32))

    @settings(max_examples=15, deadline=None)
    @given(d=st.integers(3, 200).filter(lambda v: v & (v - 1)),
           seed=st.integers(0, 100))
    def test_unsigned_divrem_matches_c(self, d, seed):
        src = """
        __global__ void k(const unsigned int* x, unsigned int* q,
                          unsigned int* r) {
            int i = threadIdx.x;
            q[i] = x[i] / %du;
            r[i] = x[i] %% %du;
        }
        """ % (d, d)
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2**32, 32, dtype=np.uint32)
        q = np.zeros(32, np.uint32)
        r = np.zeros(32, np.uint32)
        (_, q_, r_), _ = run_kernel(src, 1, 32, x, q, r)
        np.testing.assert_array_equal(q_, x // d)
        np.testing.assert_array_equal(r_, x % d)

    def test_specialized_piv_decode_uses_mulhi(self):
        """The PIV offset decode is the in-app use of magic division."""
        from repro.apps.piv import PIVConfig, PIVProblem, PIVProcessor
        from repro.gpupf import KernelCache
        problem = PIVProblem("t", 48, 64, mask=8, offs=9)
        proc = PIVProcessor(problem,
                            PIVConfig(rb=3, threads=32, specialize=True),
                            cache=KernelCache())
        ptx = proc.kernel.to_ptx()
        assert "mulhi" in ptx
        assert "div" not in ptx

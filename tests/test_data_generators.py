"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.data.frames import roi_origin, template_sequence, textured_frame
from repro.data.phantom import (ConeBeamGeometry, forward_project,
                                shepp_logan_phantom)
from repro.data.piv import particle_image_pair


class TestFrames:
    def test_textured_frame_range_and_dtype(self):
        f = textured_frame(40, 60, seed=1)
        assert f.shape == (40, 60)
        assert f.dtype == np.float32
        assert 0.0 <= f.min() and f.max() <= 1.0

    def test_textured_frame_deterministic(self):
        np.testing.assert_array_equal(textured_frame(20, 20, seed=5),
                                      textured_frame(20, 20, seed=5))

    def test_template_sequence_shapes(self):
        frames, tmpl, shifts = template_sequence(60, 80, 16, 12, 5, 7,
                                                 n_frames=3, seed=2)
        assert len(frames) == 3 and len(shifts) == 3
        assert tmpl.shape == (16, 12)
        assert all(f.shape == (60, 80) for f in frames)

    def test_shifts_within_range(self):
        _, _, shifts = template_sequence(60, 80, 16, 12, 5, 7,
                                         n_frames=8, seed=3)
        for sy, sx in shifts:
            assert 0 <= sy < 5 and 0 <= sx < 7

    def test_template_found_at_ground_truth(self):
        """The template content must actually sit at the stated shift."""
        frames, tmpl, shifts = template_sequence(60, 80, 16, 12, 5, 7,
                                                 n_frames=2, seed=4)
        ry0, rx0 = roi_origin(60, 80, 16, 12, 5, 7)
        for frame, (sy, sx) in zip(frames, shifts):
            window = frame[ry0 + sy : ry0 + sy + 16,
                           rx0 + sx : rx0 + sx + 12]
            # Noise is tiny, so the window nearly equals the template.
            assert np.abs(window - tmpl).mean() < 0.02


class TestPIVPairs:
    def test_pair_properties(self):
        a, b = particle_image_pair(40, 60, displacement=(2, 1), seed=1)
        assert a.shape == b.shape == (40, 60)
        assert a.dtype == b.dtype == np.float32
        assert a.max() <= 1.0 and a.min() >= 0.0
        assert a.std() > 0.01  # particles actually rendered

    def test_displacement_is_recoverable(self):
        """Global cross-correlation must peak at the displacement."""
        dy, dx = 3, -2
        a, b = particle_image_pair(64, 64, displacement=(dy, dx), seed=2)
        best = None
        for ty in range(-4, 5):
            for tx in range(-4, 5):
                shifted = np.roll(np.roll(b, -ty, 0), -tx, 1)
                score = float((a[8:-8, 8:-8] * shifted[8:-8, 8:-8]).sum())
                if best is None or score > best[0]:
                    best = (score, ty, tx)
        assert (best[1], best[2]) == (dy, dx)


class TestPhantom:
    def test_phantom_structure(self):
        vol = shepp_logan_phantom(24)
        assert vol.shape == (24, 24, 24)
        assert vol.max() > 0.5  # skull shell present
        assert vol[0, 0, 0] == 0.0  # corners outside

    def test_forward_projection_shape_and_symmetry(self):
        vol = shepp_logan_phantom(16)
        geom = ConeBeamGeometry(n_proj=8, det_u=20, det_v=20)
        projs = forward_project(vol, geom)
        assert projs.shape == (8, 20, 20)
        assert projs.max() > 0
        # Opposed views of a z-symmetric phantom have similar energy.
        assert abs(projs[0].sum() - projs[4].sum()) \
            < 0.2 * abs(projs[0].sum())

    def test_geometry_magnification(self):
        geom = ConeBeamGeometry(n_proj=4, det_u=16, det_v=16,
                                source_dist=3.0, det_dist=3.0)
        assert geom.magnification == 2.0
        assert len(geom.angles()) == 4

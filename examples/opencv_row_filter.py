#!/usr/bin/env python
"""The OpenCV row-filter case study (§2.6 and §4.2, Appendices E/F).

OpenCV's CUDA row filter precompiles ~800 kernel variants (every
filter size 1-32 × addressing mode × type pair) because loop unrolling
needs compile-time sizes.  With kernel specialization the same single
source compiles on demand for exactly the (ksize, anchor) the caller
asks for — no lookup tables, no binary bloat, no 32-tap ceiling.

Run:  python examples/opencv_row_filter.py
"""

import numpy as np

from repro.gpupf import KernelCache
from repro.gpusim import GPU, TESLA_C2070
from repro.kernelc import nvcc
from repro.kernelc.templates import ctrt_block

ROW_FILTER_SRC = ctrt_block({
    "KSIZE": "ksize",
    "ANCHOR": "anchor",
}) + """
#ifndef MAX_KERNEL_SIZE
#define MAX_KERNEL_SIZE 32
#endif

__constant__ float c_kernel[MAX_KERNEL_SIZE];

__global__ void linearRowFilter(const float* src, float* dst,
                                int width, int height, int ksize,
                                int anchor) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    if (x >= width || y >= height) return;
    float sum = 0.0f;
    for (int k = 0; k < KSIZE_VAL; k++) {
        int xx = x + k - ANCHOR_VAL;
        // Replicate-border addressing.
        xx = max(0, min(xx, width - 1));
        sum += src[y * width + xx] * c_kernel[k];
    }
    dst[y * width + x] = sum;
}
"""


def reference(src, taps, anchor):
    h, w = src.shape
    out = np.zeros_like(src)
    for k, c in enumerate(taps):
        xx = np.clip(np.arange(w) + k - anchor, 0, w - 1)
        out += src[:, xx] * np.float32(c)
    return out


def main():
    h, w = 48, 64
    rng = np.random.default_rng(0)
    image = rng.random((h, w)).astype(np.float32)
    gpu = GPU(TESLA_C2070)
    cache = KernelCache()

    print("specializing the row filter on demand — one source, any "
          "(ksize, anchor):\n")
    header = f"{'ksize':>5} {'anchor':>6} {'regime':>6} " \
             f"{'us':>8} {'instrs':>6}  correct"
    print(header)
    for ksize in (3, 7, 15, 31, 63):  # 63 exceeds OpenCV's ceiling!
        taps = rng.random(ksize).astype(np.float32)
        taps /= taps.sum()
        anchor = ksize // 2
        for specialize in (False, True):
            defines = {"MAX_KERNEL_SIZE": max(64, ksize)}
            if specialize:
                defines.update({"CT_KSIZE": 1, "KSIZE": ksize,
                                "CT_ANCHOR": 1, "ANCHOR": anchor})
            module = cache.compile(ROW_FILTER_SRC, defines=defines,
                                   arch=gpu.spec.arch)
            gpu.memcpy_to_symbol(module, "c_kernel", taps)
            d_src = gpu.alloc_array(image)
            d_dst = gpu.zeros(h * w, np.float32)
            launch = gpu.launch(module.kernel("linearRowFilter"),
                                grid=((w + 15) // 16, (h + 15) // 16),
                                block=(16, 16),
                                args=[d_src, d_dst, w, h, ksize,
                                      anchor])
            out = gpu.memcpy_dtoh(d_dst, np.float32,
                                  h * w).reshape(h, w)
            ok = np.allclose(out, reference(image, taps, anchor),
                             atol=1e-4)
            regime = "SK" if specialize else "RE"
            print(f"{ksize:5d} {anchor:6d} {regime:>6} "
                  f"{launch.seconds * 1e6:8.1f} "
                  f"{module.kernel('linearRowFilter').static_instructions:6d}"
                  f"  {ok}")

    print(f"\ncompilations performed: {cache.misses} "
          "(vs ~800 variants in the shipped OpenCV binary, §2.6);")
    print("ksize=63 works too — the compile-time ceiling became a "
          "per-problem choice (§4.1).")


if __name__ == "__main__":
    main()

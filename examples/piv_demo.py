#!/usr/bin/env python
"""PIV demo — the §5.2 application with register blocking.

Generates a particle image pair with a known uniform flow, runs both
kernel variants (tree reduction and warp-specialized) in both
compilation regimes, validates the SSD scores against the NumPy
reference, recovers the displacement field, and shows how the register
blocking factor trades occupancy for ILP.

Run:  python examples/piv_demo.py
"""

import numpy as np

from repro.apps.piv import (PIVConfig, PIVProblem, PIVProcessor,
                            displacement_field, ssd_scores)
from repro.data.piv import particle_image_pair
from repro.gpupf import KernelCache
from repro.gpusim import TESLA_C2070

FLOW = (2, -1)


def main():
    problem = PIVProblem("demo", 96, 128, mask=16, offs=9, overlap=8)
    img_a, img_b = particle_image_pair(problem.img_h, problem.img_w,
                                       displacement=FLOW, seed=11)
    print(f"problem: {problem.img_h}x{problem.img_w} pair, "
          f"{problem.mask}x{problem.mask} masks, "
          f"{problem.offs}x{problem.offs} search offsets, "
          f"{problem.n_windows} interrogation windows")

    reference = ssd_scores(img_a, img_b, problem)
    cache = KernelCache()

    print("\nkernel variants (Table 6.14 axes):")
    for variant in ("tree", "warpspec"):
        for specialize in (False, True):
            cfg = PIVConfig(variant=variant, rb=4, threads=64,
                            specialize=specialize)
            proc = PIVProcessor(problem, cfg, device=TESLA_C2070,
                                cache=cache)
            result = proc.run(img_a, img_b)
            ok = np.allclose(result.scores, reference, rtol=1e-4)
            regime = "SK" if specialize else "RE"
            spills = ("registers" if not proc.kernel.ir.local_arrays
                      else "local memory (spilled)")
            print(f"  {variant:9s} {regime}: "
                  f"{result.kernel_seconds * 1e6:7.1f} us  "
                  f"{result.reg_count:2d} regs  "
                  f"accumulators in {spills}  scores-match={ok}")

    print("\nregister blocking sweep (occupancy vs ILP, §6.3):")
    for rb in (1, 2, 4, 8):
        cfg = PIVConfig(variant="tree", rb=rb, threads=64,
                        specialize=True)
        proc = PIVProcessor(problem, cfg, device=TESLA_C2070,
                            cache=cache)
        result = proc.run(img_a, img_b)
        print(f"  rb={rb}: {result.kernel_seconds * 1e6:7.1f} us  "
              f"{result.reg_count:2d} regs/thread  "
              f"occupancy {result.occupancy:.2f}")

    cfg = PIVConfig(variant="warpspec", rb=4, threads=64)
    result = PIVProcessor(problem, cfg, device=TESLA_C2070,
                          cache=cache).run(img_a, img_b)
    vectors = result.vectors
    truth = np.array(FLOW)
    hit = (vectors == truth).all(axis=1).mean()
    print(f"\nrecovered flow field: {hit * 100:.0f}% of windows report "
          f"the true displacement {tuple(int(v) for v in truth)}")
    counts = {}
    for v in vectors:
        key = (int(v[0]), int(v[1]))
        counts[key] = counts.get(key, 0) + 1
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:3]
    print("most common vectors:", top)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cone-beam backprojection demo — the §5.3 application end to end.

Generates a Shepp-Logan-style phantom, forward-projects it through the
Figure 5.13 circular cone-beam geometry, reconstructs on the simulated
GPU with the specialized backprojection kernel, validates against the
NumPy reference, and prints an ASCII mid-slice of the reconstruction.

Run:  python examples/backprojection_demo.py
"""

import numpy as np

from repro.apps.backprojection import (Backprojector, BPConfig,
                                       BPProblem, backproject_reference)
from repro.data.phantom import (ConeBeamGeometry, forward_project,
                                shepp_logan_phantom)
from repro.gpupf import KernelCache
from repro.gpusim import TESLA_C2070

SHADES = " .:-=+*#%@"


def ascii_slice(image: np.ndarray, width: int = 48) -> str:
    img = image - image.min()
    if img.max() > 0:
        img = img / img.max()
    step = max(1, image.shape[1] // width)
    rows = []
    for r in img[:: max(1, step)]:
        rows.append("".join(SHADES[int(v * (len(SHADES) - 1))]
                            for v in r[::step]))
    return "\n".join(rows)


def main():
    n = 24
    problem = BPProblem("demo", nx=n, ny=n, nz=n, n_proj=24, det_u=36,
                        det_v=36)
    geom = problem.geometry()
    print(f"phantom {n}^3, {problem.n_proj} projections onto a "
          f"{problem.det_u}x{problem.det_v} detector")

    phantom = shepp_logan_phantom(n)
    print("\nforward projecting (host-side, Figure 5.13 geometry)...")
    projections = forward_project(phantom, geom)

    cache = KernelCache()
    for specialize in (False, True):
        cfg = BPConfig(block_x=8, block_y=8, zb=4,
                       specialize=specialize)
        bp = Backprojector(problem, cfg, device=TESLA_C2070,
                           cache=cache)
        result = bp.run(projections)
        regime = "SK" if specialize else "RE"
        print(f"  {regime}: {result.kernel_seconds * 1e6:7.1f} us, "
              f"{result.reg_count} regs/thread, "
              f"occupancy {result.occupancy:.2f}")
        if specialize:
            volume = result.volume

    reference = backproject_reference(projections, geom, n, n, n)
    err = np.abs(volume - reference).max() / max(np.abs(reference).max(),
                                                 1e-9)
    print(f"\nGPU vs NumPy reference: max relative deviation "
          f"{err:.2e} (fp32)")

    corr = np.corrcoef(phantom[n // 2].ravel(),
                       volume[n // 2].ravel())[0, 1]
    print(f"mid-slice correlation with phantom: {corr:.2f} "
          "(unfiltered backprojection is blurry by design)")

    print("\nphantom mid-slice:")
    print(ascii_slice(phantom[n // 2]))
    print("\nreconstruction mid-slice:")
    print(ascii_slice(volume[n // 2]))


if __name__ == "__main__":
    main()

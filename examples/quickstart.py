#!/usr/bin/env python
"""Quickstart — kernel specialization in five minutes.

Reproduces the dissertation's core demonstration (Listings 4.1/4.2,
Appendices B-D): one CUDA-C kernel source, compiled twice — fully
run-time evaluated (RE) and specialized (SK) — then executed on the
simulated Tesla C1060 and C2070, comparing correctness, PTX, register
usage, and simulated time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.kernelc import nvcc
from repro.kernelc.templates import (FLEXIBLE_MATHTEST,
                                     specialization_defines)


def main():
    loop, arg_a, arg_b, block = 5, 3, 7, 128
    grid = 4
    nthreads = grid * block

    print("=" * 70)
    print("1. Compile the flexible kernel fully run-time evaluated (RE)")
    print("=" * 70)
    mod_re = nvcc(FLEXIBLE_MATHTEST, arch="sm_13")
    k_re = mod_re.kernel("mathTest")
    print(k_re.to_ptx())
    print(f"\nRE: {k_re.static_instructions} static instructions, "
          f"{k_re.reg_count} registers/thread")

    print()
    print("=" * 70)
    print("2. Specialize: same source + -D macro values (nvcc -D ...)")
    print("=" * 70)
    defines = specialization_defines({
        "LOOP_COUNT": loop, "ARG_A": arg_a, "ARG_B": arg_b,
        "BLOCK_DIM_X": block})
    print("defines:", defines)
    mod_sk = nvcc(FLEXIBLE_MATHTEST, defines=defines, arch="sm_13")
    k_sk = mod_sk.kernel("mathTest")
    print(k_sk.to_ptx())
    print(f"\nSK: {k_sk.static_instructions} static instructions, "
          f"{k_sk.reg_count} registers/thread")
    print("note: the loop is gone (unrolled), the stride became the")
    print("immediate", arg_a * arg_b * 4, "bytes, and blockIdx.x*128 "
          "strength-reduced to a shift.")

    print()
    print("=" * 70)
    print("3. Run both on both simulated GPUs and validate")
    print("=" * 70)
    rng = np.random.default_rng(0)
    data = rng.integers(-100, 100,
                        nthreads + loop * arg_a * arg_b + 8,
                        dtype=np.int32)
    stride = arg_a * arg_b
    expected = np.array(
        [data[t : t + loop * stride : stride].sum()
         for t in range(nthreads)], dtype=np.int32)

    for spec in (TESLA_C1060, TESLA_C2070):
        gpu = GPU(spec)
        d_in = gpu.alloc_array(data)
        results = {}
        for label, module in (("RE", mod_re), ("SK", mod_sk)):
            d_out = gpu.zeros(nthreads, np.int32)
            launch = gpu.launch(module.kernel("mathTest"), grid, block,
                                [d_in, d_out, arg_a, arg_b, loop])
            out = gpu.memcpy_dtoh(d_out, np.int32, nthreads)
            assert np.array_equal(out, expected), f"{label} wrong!"
            results[label] = launch
        re_c, sk_c = results["RE"].cycles, results["SK"].cycles
        print(f"{spec.name}: RE {re_c:8.0f} cycles   "
              f"SK {sk_c:8.0f} cycles   speedup {re_c / sk_c:.2f}x   "
              f"(outputs identical)")

    print()
    print("Both regimes produce identical results; the specialized")
    print("binary simply has less work to do — the dissertation's")
    print("adaptability-with-performance claim in one kernel.")


if __name__ == "__main__":
    main()

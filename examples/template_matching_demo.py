#!/usr/bin/env python
"""Template matching demo — the §5.1 application end to end.

Builds a synthetic echo-style frame sequence with known motion, runs
the GPU-PF matching pipeline (tiled numerator with per-region
specialized kernels, partial combination, window statistics,
normalization), validates against the MATLAB-equivalent ``corr2``
reference, and reports the recovered shifts plus the pipeline's
Appendix-G-style log.

Run:  python examples/template_matching_demo.py
"""

import numpy as np

from repro.apps.template_matching import (MatchConfig, MatchProblem,
                                          TemplateMatcher, best_shift,
                                          corr2_map)
from repro.data.frames import template_sequence
from repro.gpupf import KernelCache
from repro.gpusim import TESLA_C2070


def main():
    problem = MatchProblem("demo", frame_h=120, frame_w=160,
                           tmpl_h=30, tmpl_w=24, shift_h=9, shift_w=11,
                           n_frames=4)
    frames, template, true_shifts = template_sequence(
        problem.frame_h, problem.frame_w, problem.tmpl_h,
        problem.tmpl_w, problem.shift_h, problem.shift_w,
        n_frames=problem.n_frames, seed=42)

    print(f"problem: {problem.frame_h}x{problem.frame_w} frames, "
          f"{problem.tmpl_h}x{problem.tmpl_w} template, "
          f"{problem.shift_h}x{problem.shift_w} search shifts")

    config = MatchConfig(tile_w=16, tile_h=8, threads=64,
                         specialize=True)
    matcher = TemplateMatcher(problem, template, config,
                              device=TESLA_C2070, cache=KernelCache())

    print("\nstreaming frames through the pipeline "
          "(§5.1.3.4 runtime operation):")
    for i, frame in enumerate(frames):
        result = matcher.match(frame)
        ref = corr2_map(frame, template, problem.shift_h,
                        problem.shift_w)
        ok = np.allclose(result.ncc, ref, atol=1e-4)
        marker = "OK " if result.shift == true_shifts[i] else "MISS"
        print(f"  frame {i}: found shift {result.shift}, "
              f"truth {true_shifts[i]} [{marker}]  "
              f"peak NCC {result.ncc.max():.3f}  "
              f"kernels {result.kernel_seconds * 1e6:.0f} us  "
              f"ref-match={ok}")

    print(f"\ntile decomposition (Figure 5.4): "
          f"{len(matcher.regions)} regions, "
          f"{matcher.num_tiles} tiles total")
    for r in matcher.regions:
        print(f"  region at ({r.x0},{r.y0}): {r.tiles_x}x{r.tiles_y} "
              f"tiles of {r.tile_w}x{r.tile_h}")

    print("\nGPU-PF pipeline log (Appendix-G style), last refresh and "
          "iteration:")
    for line in matcher.pipe.log[:14]:
        print("  " + line)
    print("  ...")


if __name__ == "__main__":
    main()
